"""TaskSanitizer: segment-based detection with compile-time instrumentation.

Modeled from Matar & Unat (Euro-Par'18) as characterized by the paper:

* segment graph like Taskgrind's, but **no** ``inoutset``/``detach`` support
  (Section III-A: "TaskSanitizer supports mutexes but does not support the
  inoutset dependency type nor the detach clause, while Taskgrind is the
  opposite") and no modeling of the ``undeferred`` sequencing rule (the
  DRB122 false positive);
* **compile-time scope** (misses uninstrumented symbols) and a **Clang 8.x
  front-end**: programs using newer OpenMP constructs do not compile — the
  ``ncs`` cells of Table I (the paper: "indicates that the test does not
  compile with Clang 8.x");
* allocation-epoch coloring: its allocator interceptors give recycled heap
  addresses fresh identities, so memory recycling produces no false
  positives (TMB 1000).
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.shadow import IntervalMap
from repro.core.analysis import RaceCandidate, find_races_indexed
from repro.core.segments import SegmentBuilder, SegmentModelConfig
from repro.errors import NoCompilerSupport
from repro.machine.cost import ToolCost
from repro.openmp.ompt import OmptObserver, SyncKind
from repro.vex.events import AccessEvent, FreeEvent
from repro.vex.tool import Tool

#: Virtual-address stride separating allocation epochs (coloring).
EPOCH_STRIDE = 1 << 48

#: The modeled Clang front-end version.
CLANG_VERSION = 8


class _BuilderOmptShim(OmptObserver):
    """Feeds runtime events straight into a SegmentBuilder (no client
    requests: compile-time tools link their runtime directly).

    ``dep_scope`` selects how the tool matches task dependences:

    * ``"sibling"`` — trust the runtime's (correct, sibling-scoped) pairs;
    * ``"global"`` — match by address across *all* tasks, ignoring OpenMP's
      sibling rule: the modeled TaskSanitizer defect behind the DRB173/175
      false negatives (a non-sibling pair appears ordered because the
      addresses match);
    * ``"region"`` — match per parallel region: ROMP's variant, which still
      falsely orders the DRB173 uncle/nephew pair but not pairs living in
      different nested regions (DRB175).
    """

    def __init__(self, builder: SegmentBuilder, machine, *,
                 dep_scope: str = "sibling") -> None:
        self.builder = builder
        self.machine = machine
        self.dep_scope = dep_scope
        self._trackers: dict = {}

    def _tracker(self, task):
        from repro.openmp.deps import DependencyTracker
        key = None
        if self.dep_scope == "region":
            key = task.region.id if task.region is not None else None
        tracker = self._trackers.get(key)
        if tracker is None:
            tracker = self._trackers[key] = DependencyTracker()
        return tracker

    def _tid(self) -> int:
        return self.machine.scheduler.current_id()

    def on_parallel_begin(self, region, task) -> None:
        self.builder.on_parallel_begin(region, task, self._tid())

    def on_parallel_end(self, region, task) -> None:
        self.builder.on_parallel_end(region, task, self._tid())

    def on_implicit_task_begin(self, region, task) -> None:
        self.builder.on_implicit_task_begin(region, task, self._tid())

    def on_implicit_task_end(self, region, task) -> None:
        self.builder.on_implicit_task_end(region, task, self._tid())

    def on_task_create(self, task, parent) -> None:
        self.builder.on_task_create(task, parent, self._tid())

    def on_task_dependences(self, task, deps) -> None:
        if self.dep_scope != "sibling":
            for pred, dep in self._tracker(task).register(task, deps):
                self.builder.on_task_dependence_pair(pred, task, dep)

    def on_task_dependence_pair(self, pred, succ, dep) -> None:
        if self.dep_scope == "sibling":
            self.builder.on_task_dependence_pair(pred, succ, dep)

    def on_task_schedule_begin(self, task, thread_id) -> None:
        self.builder.on_task_schedule_begin(task, thread_id)

    def on_task_schedule_end(self, task, thread_id, completed) -> None:
        self.builder.on_task_schedule_end(task, thread_id, completed)

    def on_task_detach_fulfill(self, task, thread_id) -> None:
        self.builder.on_task_detach_fulfill(task, thread_id)

    def on_sync_region_begin(self, kind: SyncKind, task, thread_id) -> None:
        self.builder.on_sync_begin(kind, task, thread_id)

    def on_sync_region_end(self, kind: SyncKind, task, thread_id) -> None:
        self.builder.on_sync_end(kind, task, thread_id)


class TaskSanitizerTool(Tool):
    """TaskSanitizer as a machine-level tool."""

    name = "tasksanitizer"
    is_dbi = False
    cost = ToolCost(access_factor=18.0, serialize=False)

    SEGMENT_MODEL = SegmentModelConfig(
        honor_inoutset=False,
        honor_detach=False,
        honor_undeferred=False,
        honor_taskgroup=False,        # the DRB107/174 false positives
        honor_deferrable_annotation=False,
    )

    def __init__(self) -> None:
        super().__init__()
        self.builder: Optional[SegmentBuilder] = None
        self._epochs: IntervalMap[int] = IntervalMap()
        self.reports: List[RaceCandidate] = []

    # -- compiler gate -------------------------------------------------------

    def compile_check(self, program) -> None:
        min_clang = getattr(program, "min_clang", 8)
        if min_clang > CLANG_VERSION:
            raise NoCompilerSupport(
                self.name, f"requires Clang >= {min_clang} "
                f"(tool ships Clang {CLANG_VERSION})")

    # -- lifecycle --------------------------------------------------------------

    def attach(self, machine) -> None:
        super().attach(machine)
        self.builder = SegmentBuilder(machine, self.SEGMENT_MODEL)

    def make_ompt_shim(self) -> _BuilderOmptShim:
        # address-global dependence matching: the DRB173/175 FN mechanism
        return _BuilderOmptShim(self.builder, self.machine,
                                dep_scope="global")

    # -- allocation-epoch coloring -------------------------------------------------

    def _virtualize(self, addr: int) -> int:
        epoch = self._epochs.get_point(addr) or 0
        return addr + epoch * EPOCH_STRIDE

    def on_free(self, event: FreeEvent) -> None:
        self._epochs.update(event.addr, event.addr + event.size,
                            lambda e: (e or 0) + 1)

    # -- accesses --------------------------------------------------------------------

    def on_access(self, event: AccessEvent) -> None:
        self.builder.record_access(event.thread_id,
                                   self._virtualize(event.addr), event.size,
                                   event.is_write, event.loc)

    # -- analysis --------------------------------------------------------------------

    def finalize(self) -> List[RaceCandidate]:
        self.reports = find_races_indexed(self.builder.graph)
        return self.reports

    def memory_bytes(self, app_bytes: int = 0) -> int:
        return self.builder.graph.memory_bytes()
