"""ROMP: dynamic binary instrumentation, OpenMP-only, access histories.

Modeled from Gu & Mellor-Crummey (SC'18) as characterized by the paper:

* **DBI scope** like Taskgrind (sees every access, ``is_dbi = True``) with
  deep OpenMP-runtime integration — it identifies runtime-owned memory (task
  descriptors) and firstprivate capture reads and excludes them;
* coarse **stack/TLS filtering**: conflicts on a stack or TLS range are
  dropped when every party executed on the owning thread (the precise
  frame-registration of Taskgrind is what Section IV-D contrasts against);
* **access histories**: per-range per-access records with no interval
  compaction — memory grows with the access *count*, the mechanism behind
  the 75 GB blow-up the paper reports on LULESH ``-s 64``;
* **poor error reporting** (Listing 5): raw addresses, no debug info;
* modeled crashes: the DRB127 ``segv`` (threadprivate + tasking) and the
  LULESH first-iteration crash, both reported as
  :class:`repro.errors.GuestCrash`.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.baselines.shadow import IntervalMap
from repro.baselines.tasksanitizer import _BuilderOmptShim, EPOCH_STRIDE
from repro.core.analysis import RaceCandidate, find_races_indexed
from repro.core.segments import SegmentBuilder, SegmentModelConfig
from repro.errors import GuestCrash
from repro.machine.cost import ToolCost
from repro.machine.memory import RegionKind
from repro.util.intervals import IntervalSet
from repro.vex.events import AccessEvent, FreeEvent
from repro.vex.tool import Tool

#: bytes per access-history record (no compaction!)
HISTORY_RECORD_BYTES = 48

#: dynamic accesses per logical 8-byte cell: real kernels re-touch operands
#: many times per iteration and ROMP records *every* dynamic access, while
#: our interval events record each cell once (calibrated so the LULESH
#: ``-s 64`` first iteration lands near the paper's 75 GB)
RETOUCH_FACTOR = 80

#: crash when the history exceeds this many simulated bytes
DEFAULT_MEMORY_CAP = 75 << 30


class RompTool(Tool):
    """ROMP as a machine-level tool."""

    name = "romp"
    is_dbi = True
    cost = ToolCost(access_factor=1300.0, compute_factor=100.0,
                    translation_ops=400_000.0, serialize=False)

    SEGMENT_MODEL = SegmentModelConfig(
        honor_mutexinoutset=False,        # the DRB135 false positive
        honor_undeferred=False,           # the DRB122 false positive
        honor_deferrable_annotation=False,
    )

    #: symbols whose accesses ROMP's runtime integration reclassifies
    RUNTIME_AWARE_SYMBOLS: Set[str] = {".omp.copyin"}

    def __init__(self, *, memory_cap: int = DEFAULT_MEMORY_CAP,
                 crash_after_regions: Optional[int] = None) -> None:
        super().__init__()
        self.builder: Optional[SegmentBuilder] = None
        self._epochs: IntervalMap[int] = IntervalMap()
        self.memory_cap = memory_cap
        #: models the paper's LULESH observation: "the instrumented program
        #: crashed early during the first iteration" — crash after this many
        #: parallel regions complete (None = never)
        self.crash_after_regions = crash_after_regions
        self.regions_seen = 0
        self.history_records = 0
        self.reports: List[RaceCandidate] = []

    def _on_region_end(self) -> None:
        self.regions_seen += 1
        if (self.crash_after_regions is not None
                and self.regions_seen >= self.crash_after_regions):
            raise GuestCrash(self.name,
                             "segv in region teardown (dependent-task port)")

    # -- pre-run gates -------------------------------------------------------

    def compile_check(self, program) -> None:
        # ROMP instruments binaries, no compiler gate — but the paper records
        # a segv on DRB127 (threadprivate + tasking): model it as the
        # instrumented run crashing immediately.
        if "romp-segv" in getattr(program, "features", frozenset()):
            raise GuestCrash(self.name,
                             "segv instrumenting threadprivate tasking test")

    def attach(self, machine) -> None:
        super().attach(machine)
        self.builder = SegmentBuilder(machine, self.SEGMENT_MODEL)

    def make_ompt_shim(self) -> _BuilderOmptShim:
        # region-scoped dependence matching: orders the DRB173 uncle/nephew
        # pair (FN) but not the cross-nested-region DRB175 pair (TP)
        tool = self

        class _RompShim(_BuilderOmptShim):
            def on_parallel_end(self, region, task) -> None:
                super().on_parallel_end(region, task)
                tool._on_region_end()

        return _RompShim(self.builder, self.machine, dep_scope="region")

    # -- coloring + filtering -------------------------------------------------------

    def _virtualize(self, addr: int) -> int:
        epoch = self._epochs.get_point(addr) or 0
        return addr + epoch * EPOCH_STRIDE

    def on_free(self, event: FreeEvent) -> None:
        self._epochs.update(event.addr, event.addr + event.size,
                            lambda e: (e or 0) + 1)

    def _arena_lookup(self, addr: int) -> bool:
        """Task-descriptor memory (the runtime's fast arena)."""
        for base in self.machine.fast_arena.owned_blocks:
            if base <= addr < base + self.machine.fast_arena.chunk:
                return True
        return False

    def on_access(self, event: AccessEvent) -> None:
        if event.symbol.name in self.RUNTIME_AWARE_SYMBOLS:
            return                      # capture reads modeled precisely
        if event.symbol.name.startswith("__kmp"):
            return                      # runtime internals: ROMP knows them
        if self._arena_lookup(event.addr):
            return                      # runtime-owned descriptors excluded
        self.history_records += max(1, event.size // 8) * RETOUCH_FACTOR
        if self.history_records * HISTORY_RECORD_BYTES > self.memory_cap:
            raise GuestCrash(self.name,
                             "access history exhausted memory "
                             f"({self.history_records} records)")
        self.builder.record_access(event.thread_id,
                                   self._virtualize(event.addr), event.size,
                                   event.is_write, event.loc)

    # -- analysis + coarse suppressions ----------------------------------------------

    def finalize(self) -> List[RaceCandidate]:
        candidates = find_races_indexed(self.builder.graph)
        self.reports = [c for c in candidates if not self._suppressed(c)]
        return self.reports

    def _suppressed(self, cand: RaceCandidate) -> bool:
        """Coarse owner-thread stack/TLS filtering (vs Taskgrind's precise
        frame registration)."""
        surviving = IntervalSet()
        for piece in cand.ranges:
            real_lo = piece.lo % EPOCH_STRIDE
            region = self.machine.space.region_at(real_lo)
            if region is not None and region.kind in (RegionKind.STACK,
                                                      RegionKind.TLS):
                owner = region.owner_thread
                if cand.s1.thread_id == owner and cand.s2.thread_id == owner:
                    continue
            surviving.add(piece.lo, piece.hi)
        return not surviving

    def memory_bytes(self, app_bytes: int = 0) -> int:
        return (self.history_records * HISTORY_RECORD_BYTES
                + self.builder.graph.memory_bytes())
