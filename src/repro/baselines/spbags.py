"""SP-bags (Nondeterminator, Feng & Leiserson 1997) for Cilk programs.

The paper's related work (Section VI-b): the Nondeterminator detects
determinacy races of Cilk programs *provably and efficiently* — but only
under the **serial-elision assumption**: the program is executed serially
(depth-first, children inline) and the algorithm reasons about what *could*
run in parallel.  Taskgrind has no such assumption (it analyzes the actual
parallel execution's segment graph); the A2 ablation bench compares the two.

Algorithm (classic SP-bags over a disjoint-set forest):

* when procedure ``F`` starts: ``S(F) = {F}``, ``P(F) = {}``;
* when a spawned child ``F'`` returns: ``P(F) ∪= S(F') ∪ P(F')``;
* at a ``sync`` in ``F``: ``S(F) ∪= P(F)``, ``P(F) = {}``;
* read of ``x`` by ``F``: race iff ``FIND(writer(x))`` is a P-bag;
  then ``reader(x) = F`` if ``FIND(reader(x))`` is an S-bag;
* write of ``x`` by ``F``: race iff ``FIND(reader(x))`` or
  ``FIND(writer(x))`` is a P-bag; then ``writer(x) = F``.

Shadow state is kept per byte range in an :class:`IntervalMap` (the
simulated accesses are dense intervals).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baselines.shadow import IntervalMap
from repro.cilk.runtime import CilkEnv, CilkFrame, CilkObserver
from repro.errors import ToolError
from repro.machine.cost import ToolCost
from repro.machine.debuginfo import SourceLocation
from repro.vex.events import AccessEvent
from repro.vex.tool import Tool


class _Bags:
    """Disjoint-set forest whose roots carry a bag kind ('S' or 'P')."""

    def __init__(self) -> None:
        self._parent: Dict[int, int] = {}
        self._rank: Dict[int, int] = {}
        self._kind: Dict[int, str] = {}
        #: the current S/P set representative per frame id
        self.s_of: Dict[int, int] = {}
        self.p_of: Dict[int, Optional[int]] = {}
        self._next_node = 0

    def _new_node(self, kind: str) -> int:
        node = self._next_node
        self._next_node += 1
        self._parent[node] = node
        self._rank[node] = 0
        self._kind[node] = kind
        return node

    def find(self, node: int) -> int:
        root = node
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[node] != root:          # path compression
            self._parent[node], node = root, self._parent[node]
        return root

    def union(self, a: int, b: int, kind: str) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            self._kind[ra] = kind
            return ra
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        self._kind[ra] = kind
        return ra

    # -- frame lifecycle ----------------------------------------------------

    def frame_start(self, fid: int) -> None:
        self.s_of[fid] = self._new_node("S")
        self.p_of[fid] = None

    def frame_node(self, fid: int) -> int:
        """The node identifying ``fid`` in shadow records (its S origin)."""
        return self.s_of[fid]

    def child_returned(self, parent_fid: int, child_fid: int) -> None:
        merged = self.s_of[child_fid]
        child_p = self.p_of[child_fid]
        if child_p is not None:
            merged = self.union(merged, child_p, "P")
        if self.p_of[parent_fid] is None:
            self._kind[self.find(merged)] = "P"
            self.p_of[parent_fid] = self.find(merged)
        else:
            self.p_of[parent_fid] = self.union(self.p_of[parent_fid],
                                               merged, "P")

    def sync(self, fid: int) -> None:
        if self.p_of[fid] is not None:
            self.s_of[fid] = self.union(self.s_of[fid], self.p_of[fid], "S")
            self.p_of[fid] = None

    def kind_of(self, node: int) -> str:
        return self._kind[self.find(node)]


@dataclass
class SpBagsRace:
    """One detected race."""

    lo: int
    hi: int
    kind: str                  # 'wr', 'rw', 'ww'
    loc: Optional[SourceLocation]

    def key(self) -> Tuple[int, str]:
        return (self.lo, self.kind)


@dataclass
class _Cell:
    reader: Optional[int] = None       # bag node of the last logged reader
    writer: Optional[int] = None
    reader_loc: Optional[SourceLocation] = None
    writer_loc: Optional[SourceLocation] = None

    def clone(self) -> "_Cell":
        return _Cell(self.reader, self.writer, self.reader_loc,
                     self.writer_loc)


class SpBagsTool(Tool, CilkObserver):
    """The Nondeterminator as a machine tool + Cilk observer."""

    name = "spbags"
    is_dbi = False                       # compile-time instrumentation
    cost = ToolCost(access_factor=6.0)   # the paper-era tools were light

    def __init__(self) -> None:
        super().__init__()
        self.bags = _Bags()
        self.shadow: IntervalMap[_Cell] = IntervalMap()
        self.races: List[SpBagsRace] = []
        self._current: List[CilkFrame] = []
        self._attached_env: Optional[CilkEnv] = None

    # -- wiring ---------------------------------------------------------------

    def attach_cilk(self, env: CilkEnv) -> None:
        if not env.serial_elision:
            raise ToolError(
                "SP-bags requires the serial elision (serial_elision=True)")
        env.register(self)
        self._attached_env = env

    # -- Cilk events ---------------------------------------------------------------

    def on_frame_begin(self, frame: CilkFrame, thread_id: int) -> None:
        self.bags.frame_start(frame.fid)
        self._current.append(frame)

    def on_frame_end(self, frame: CilkFrame, thread_id: int) -> None:
        self._current.pop()
        if frame.parent is not None:
            self.bags.child_returned(frame.parent.fid, frame.fid)

    def on_sync_begin(self, frame: CilkFrame, thread_id: int) -> None:
        self.bags.sync(frame.fid)

    # -- accesses --------------------------------------------------------------------

    def _frame_node(self) -> Optional[int]:
        if not self._current:
            return None
        return self.bags.frame_node(self._current[-1].fid)

    def on_access(self, event: AccessEvent) -> None:
        node = self._frame_node()
        if node is None:
            return
        lo, hi = event.addr, event.end

        def upd(cell: Optional[_Cell]) -> _Cell:
            cell = _Cell() if cell is None else cell.clone()
            if event.is_write:
                if cell.reader is not None and \
                        self.bags.kind_of(cell.reader) == "P":
                    self.races.append(SpBagsRace(lo, hi, "rw",
                                                 event.loc))
                if cell.writer is not None and \
                        self.bags.kind_of(cell.writer) == "P":
                    self.races.append(SpBagsRace(lo, hi, "ww", event.loc))
                cell.writer = node
                cell.writer_loc = event.loc
            else:
                if cell.writer is not None and \
                        self.bags.kind_of(cell.writer) == "P":
                    self.races.append(SpBagsRace(lo, hi, "wr", event.loc))
                if cell.reader is None or \
                        self.bags.kind_of(cell.reader) == "S":
                    cell.reader = node
                    cell.reader_loc = event.loc
            return cell

        self.shadow.update(lo, hi, upd)

    # -- results ----------------------------------------------------------------------

    def finalize(self) -> List[SpBagsRace]:
        seen = set()
        out = []
        for race in self.races:
            if race.key() not in seen:
                seen.add(race.key())
                out.append(race)
        return out

    def memory_bytes(self, app_bytes: int = 0) -> int:
        return len(self.shadow) * 64 + self.bags._next_node * 24
