"""Verdict bookkeeping shared by the benchmark harness and all tools."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class Verdict(enum.Enum):
    """A Table I cell."""

    TP = "TP"     # racy program, race reported
    FP = "FP"     # race-free program, race reported
    TN = "TN"     # race-free program, nothing reported
    FN = "FN"     # racy program, nothing reported
    NCS = "ncs"   # no compiler support (program rejected at build time)
    SEGV = "segv" # instrumented execution crashed
    DEADLOCK = "deadlock"

    def __str__(self) -> str:
        return self.value


def classify(reported: bool, racy: bool) -> Verdict:
    """Fold a tool's output against ground truth into a Table I verdict."""
    if racy:
        return Verdict.TP if reported else Verdict.FN
    return Verdict.FP if reported else Verdict.TN


@dataclass
class ToolOutcome:
    """Everything a single (program, tool, threads, seed) run produced."""

    tool: str
    reports: List = field(default_factory=list)
    verdict: Optional[Verdict] = None
    crashed: bool = False
    crash_reason: str = ""
    sim_seconds: float = 0.0
    sim_memory_mib: float = 0.0
    report_count: int = 0

    @property
    def reported(self) -> bool:
        return self.report_count > 0
