"""Shadow memory: a sorted interval map with copy-on-split payloads.

ThreadSanitizer keeps per-granule shadow cells; with our interval-granular
access events, the natural shadow structure is a map from disjoint address
ranges to cell payloads, splitting ranges on partial overlap.  Used by the
TSan core (Archer) and ROMP's access histories.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Generic, Iterator, List, Optional, Tuple, TypeVar

V = TypeVar("V")


class IntervalMap(Generic[V]):
    """Disjoint, sorted ``[lo, hi) -> value`` ranges."""

    __slots__ = ("_los", "_his", "_vals")

    def __init__(self) -> None:
        self._los: List[int] = []
        self._his: List[int] = []
        self._vals: List[V] = []

    def __len__(self) -> int:
        return len(self._los)

    def __iter__(self) -> Iterator[Tuple[int, int, V]]:
        yield from zip(self._los, self._his, self._vals)

    # -- queries -----------------------------------------------------------

    def overlaps(self, lo: int, hi: int) -> List[Tuple[int, int, V]]:
        """All ``(lo, hi, value)`` entries intersecting ``[lo, hi)``."""
        out: List[Tuple[int, int, V]] = []
        if lo >= hi or not self._los:
            return out
        i = bisect_right(self._los, lo) - 1
        if i < 0:
            i = 0
        while i < len(self._los) and self._los[i] < hi:
            if self._his[i] > lo:
                out.append((self._los[i], self._his[i], self._vals[i]))
            i += 1
        return out

    def get_point(self, addr: int) -> Optional[V]:
        i = bisect_right(self._los, addr) - 1
        if i >= 0 and addr < self._his[i]:
            return self._vals[i]
        return None

    # -- mutation --------------------------------------------------------------

    def _split_at(self, addr: int) -> None:
        """Ensure no stored range straddles ``addr``."""
        i = bisect_right(self._los, addr) - 1
        if i >= 0 and self._los[i] < addr < self._his[i]:
            lo, hi, val = self._los[i], self._his[i], self._vals[i]
            self._los[i:i + 1] = [lo, addr]
            self._his[i:i + 1] = [addr, hi]
            self._vals[i:i + 1] = [val, val]

    def update(self, lo: int, hi: int,
               fn: Callable[[Optional[V]], Optional[V]]) -> None:
        """Rewrite ``[lo, hi)``: ``fn`` maps old payload (None = unmapped) to
        new payload (None = remove).  Gaps inside the range are passed as
        ``None`` exactly once per gap.
        """
        if lo >= hi:
            return
        self._split_at(lo)
        self._split_at(hi)
        i = bisect_right(self._los, lo) - 1
        if i < 0 or self._his[i] <= lo:
            i += 1
        new_los: List[int] = []
        new_his: List[int] = []
        new_vals: List[V] = []
        cursor = lo
        j = i
        while j < len(self._los) and self._los[j] < hi:
            if self._los[j] > cursor:          # gap before this entry
                nv = fn(None)
                if nv is not None:
                    new_los.append(cursor)
                    new_his.append(self._los[j])
                    new_vals.append(nv)
            nv = fn(self._vals[j])
            if nv is not None:
                new_los.append(self._los[j])
                new_his.append(self._his[j])
                new_vals.append(nv)
            cursor = self._his[j]
            j += 1
        if cursor < hi:                        # trailing gap
            nv = fn(None)
            if nv is not None:
                new_los.append(cursor)
                new_his.append(hi)
                new_vals.append(nv)
        self._los[i:j] = new_los
        self._his[i:j] = new_his
        self._vals[i:j] = new_vals

    def clear_range(self, lo: int, hi: int) -> None:
        self.update(lo, hi, lambda _v: None)

    # -- accounting ----------------------------------------------------------------

    @property
    def covered_bytes(self) -> int:
        return sum(h - l for l, h in zip(self._los, self._his))
