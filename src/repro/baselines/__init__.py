"""Modeled state-of-the-art comparators (paper Section V / Table I).

Each baseline is a :class:`repro.vex.tool.Tool` whose *blind spots are
mechanisms*, not hardcoded verdicts:

* :mod:`repro.baselines.archer` — Archer: ThreadSanitizer (pure happens-before
  over vector clocks + shadow memory) fed OpenMP synchronisation through
  OMPT.  Compile-time instrumentation (misses runtime-internal accesses);
  thread-centric (same-thread program order hides races the scheduler
  serialized — the paper's single-thread LULESH observation); verdicts depend
  on the observed schedule.
* :mod:`repro.baselines.tasksanitizer` — TaskSanitizer: segment-based like
  Taskgrind but compile-time, gated by a Clang-8 feature matrix (the ``ncs``
  cells), without ``inoutset``/``detach`` support and without the undeferred
  sequencing rule.
* :mod:`repro.baselines.romp` — ROMP: dynamic binary instrumentation like
  Taskgrind (sees everything) but OpenMP-only, with access-history shadow
  state, no debug info in reports, a modeled crash on threadprivate+tasking
  (the ``segv`` cell) and a blow-up on large inputs (the LULESH sidebar).
* :mod:`repro.baselines.spbags` — Nondeterminator's SP-bags for the Cilk
  comparison (related-work ablation A2): serial-elision assumption included.
"""

from repro.baselines.common import ToolOutcome, Verdict, classify
from repro.baselines.archer import ArcherTool
from repro.baselines.tasksanitizer import TaskSanitizerTool
from repro.baselines.romp import RompTool

__all__ = ["ToolOutcome", "Verdict", "classify",
           "ArcherTool", "TaskSanitizerTool", "RompTool"]
