"""Archer: ThreadSanitizer + OMPT-driven OpenMP synchronisation.

Mechanically modeled properties (each one shows up in the paper's tables):

* **Compile-time scope** — ``is_dbi = False``: accesses in uninstrumented
  symbols (the runtime's ``__kmp*`` internals, libc's ``memcpy`` marshalling
  firstprivate payloads) are invisible, both as potential races *and* as
  sources of false positives.
* **Thread-centric clocks** — tasks serialized onto one thread are ordered by
  program order: with ``OMP_NUM_THREADS=1`` Archer reports nothing on the
  racy LULESH (Table II), and its verdicts on deferred-task races are
  schedule-dependent (the "149 to 273" report ranges).
* **OMPT sync mapping** — task creation, dependences, taskwait, taskgroup,
  barriers, mutexes and detach-fulfill all become release/acquire pairs on
  the TSan core, the way Archer annotates TSan.
* **Shadow reset on free** — no recycling false positives.
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.tsan import TsanCore, TsanRace
from repro.machine.cost import ToolCost
from repro.openmp.ompt import OmptObserver, SyncKind
from repro.vex.events import AccessEvent, FreeEvent
from repro.vex.tool import Tool


class ArcherOmptShim(OmptObserver):
    """Archer's OMPT callbacks: runtime events -> release/acquire."""

    def __init__(self, tool: "ArcherTool") -> None:
        self.tool = tool

    def _tid(self) -> int:
        return self.tool.machine.scheduler.current_id()

    # parallel regions ------------------------------------------------------

    def on_parallel_begin(self, region, encountering_task) -> None:
        self.tool.core.release(self._tid(), ("fork", region.id))

    def on_implicit_task_begin(self, region, task) -> None:
        self.tool.core.acquire(self._tid(), ("fork", region.id))

    def on_implicit_task_end(self, region, task) -> None:
        self.tool.core.release(self._tid(), ("implicit_done", task.tid))

    def on_parallel_end(self, region, encountering_task) -> None:
        tid = self._tid()
        for t in region.implicit_tasks:
            if t is not None:
                self.tool.core.acquire(tid, ("implicit_done", t.tid))

    # explicit tasks ------------------------------------------------------------

    def on_task_create(self, task, parent) -> None:
        self.tool.children.setdefault(parent.tid, []).append(task)
        self.tool.core.release(self._tid(), ("task_create", task.tid))
        group = self.tool.open_groups.get(parent.tid)
        if group is not None:
            group.append(task)
            self.tool.task_group[task.tid] = group
        else:
            inherited = self.tool.task_group.get(parent.tid)
            if inherited is not None:
                inherited.append(task)
                self.tool.task_group[task.tid] = inherited

    def on_task_dependence_pair(self, pred, succ, dep) -> None:
        self.tool.preds.setdefault(succ.tid, []).append(pred.tid)

    def on_task_schedule_begin(self, task, thread_id) -> None:
        core = self.tool.core
        core.acquire(thread_id, ("task_create", task.tid))
        for pred_tid in self.tool.preds.get(task.tid, ()):
            if (self.tool.dep_hb == "gapped"
                    and self.tool.completer.get(pred_tid, thread_id)
                    != thread_id
                    and self.tool.machine.rng.randint(
                        "archer.gap", 0, 100) < self.tool.GAP_RATE_PCT):
                # the modeled libomp annotation gap: the release/acquire
                # pair on the dependence hash is sometimes missed when the
                # successor was stolen by a third thread (LLVM >= 13 libomp
                # shipped with incomplete TSan annotations for task
                # dependences) — a timing window, hence probabilistic
                self.tool.gapped_edges += 1
                continue
            core.acquire(thread_id, ("task_done", pred_tid))

    def on_task_schedule_end(self, task, thread_id, completed) -> None:
        if completed:
            self.tool.completer[task.tid] = thread_id
            self.tool.core.release(thread_id, ("task_done", task.tid))

    def on_task_detach_fulfill(self, task, thread_id) -> None:
        self.tool.core.release(thread_id, ("task_done", task.tid))

    # synchronisation ---------------------------------------------------------------

    def on_sync_region_begin(self, kind: SyncKind, task, thread_id) -> None:
        if kind == SyncKind.TASKGROUP:
            self.tool.open_groups[task.tid] = []
        elif kind in (SyncKind.BARRIER, SyncKind.BARRIER_IMPLICIT):
            region = task.region
            if region is not None:
                key = (region.id, thread_id)
                k = self.tool.barrier_count.get(key, 0)
                self.tool.barrier_count[key] = k + 1
                self.tool.core.release(thread_id, ("barrier", region.id, k))

    def on_sync_region_end(self, kind: SyncKind, task, thread_id) -> None:
        core = self.tool.core
        if kind == SyncKind.TASKWAIT:
            for child in self.tool.children.get(task.tid, ()):
                core.acquire(thread_id, ("task_done", child.tid))
        elif kind == SyncKind.TASKGROUP:
            members = self.tool.open_groups.pop(task.tid, [])
            for member in members:
                core.acquire(thread_id, ("task_done", member.tid))
        elif kind in (SyncKind.BARRIER, SyncKind.BARRIER_IMPLICIT):
            region = task.region
            if region is not None:
                k = self.tool.barrier_count[(region.id, thread_id)] - 1
                core.acquire(thread_id, ("barrier", region.id, k))

    # mutexes (critical / omp locks) — Archer supports these -------------------------

    def on_mutex_acquired(self, name: str, thread_id: int) -> None:
        self.tool.core.acquire(thread_id, ("mutex", name))

    def on_mutex_released(self, name: str, thread_id: int) -> None:
        self.tool.core.release(thread_id, ("mutex", name))


class ArcherTool(Tool):
    """Archer as a machine-level tool."""

    name = "archer"
    is_dbi = False
    # ~10x slowdown on instrumented accesses; runs truly multi-threaded.
    cost = ToolCost(access_factor=13.0, compute_factor=1.0, serialize=False)

    #: TSan shadow: ~4 shadow bytes per app byte over everything the process
    #: maps (libraries included) — the paper's 4x memory overhead.
    SHADOW_PER_APP_BYTE = 2.9
    #: per-worker-thread TSan state (trace buffers, clock slabs) — the reason
    #: the paper's Archer RSS doubles from 1 to 4 threads (41 -> 83 MB)
    PER_EXTRA_THREAD_BYTES = 9 << 20
    #: extra per-access ops when >1 thread is live: contended atomic shadow
    #: updates — the paper's Archer runs *slower* on 4 threads (0.43 s) than
    #: on 1 (0.12 s)
    MT_CONTENTION_FACTOR = 52.0

    def __init__(self, *, dep_hb: str = "full") -> None:
        """``dep_hb``: 'full' = ideal OMPT-level dependence happens-before;
        'gapped' = model the libomp annotation gaps of recent LLVM (the
        paper's Archer reports races on the *correct* LULESH at 4 threads —
        false positives from exactly this class)."""
        super().__init__()
        self.core = TsanCore()
        self.dep_hb = dep_hb
        self.children: Dict[int, List] = {}
        self.preds: Dict[int, List[int]] = {}
        self.completer: Dict[int, int] = {}
        self.gapped_edges = 0
        self.open_groups: Dict[int, List] = {}
        self.task_group: Dict[int, List] = {}
        self.barrier_count: Dict = {}
        self.reports: List[TsanRace] = []

    def make_ompt_shim(self) -> ArcherOmptShim:
        return ArcherOmptShim(self)

    def on_access(self, event: AccessEvent) -> None:
        if event.atomic:
            return                      # atomics are synchronisation, not races
        if self.machine.scheduler.peak_live > 1:
            cost = self.machine.cost
            cost.clock.charge(self.machine.scheduler.maybe_current(),
                              cost.params.access_ops(event.size)
                              * self.MT_CONTENTION_FACTOR)
        if event.is_write:
            self.core.on_write(event.thread_id, event.addr, event.end,
                               event.loc)
        else:
            self.core.on_read(event.thread_id, event.addr, event.end,
                              event.loc)

    def on_free(self, event: FreeEvent) -> None:
        if not event.retained:
            self.core.on_free_range(event.addr, event.addr + event.size)

    def finalize(self) -> List[TsanRace]:
        self.reports = self.core.unique_races()
        return self.reports

    @property
    def raw_race_count(self) -> int:
        return len(self.core.races)

    def memory_bytes(self, app_bytes: int = 0) -> int:
        # peak concurrent threads: real libomp pools its workers
        extra_threads = max(0, self.machine.scheduler.peak_live - 1)
        return int(self.SHADOW_PER_APP_BYTE * app_bytes) + \
            extra_threads * self.PER_EXTRA_THREAD_BYTES + \
            self.core.memory_bytes(shadow_per_app_byte=1)

    #: TSan deduplicates reports per racy-address granule + stack pair; this
    #: approximates its suppression granularity for interval accesses.
    REPORT_GRANULE = 512

    #: probability (percent) that a stolen dependence edge hits the modeled
    #: libomp annotation window in 'gapped' mode (calibrated so the LULESH
    #: report counts land in the paper's 140-273 band)
    GAP_RATE_PCT = 12

    @property
    def dynamic_report_count(self) -> int:
        """Racy access events weighted by the report granules they covered —
        the closest analogue of TSan's report stream (interval accesses
        collapse what per-element code reports per element)."""
        return sum(max(1, (r.hi - r.lo) // self.REPORT_GRANULE)
                   for r in self.core.races)
