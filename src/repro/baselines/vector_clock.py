"""Vector clocks and epochs (FastTrack-style), for the TSan core."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

Epoch = Tuple[int, int]          # (thread_id, clock)


class VectorClock:
    """A sparse vector clock over simulated thread ids."""

    __slots__ = ("_c",)

    def __init__(self, init: Optional[Dict[int, int]] = None) -> None:
        self._c: Dict[int, int] = dict(init or {})

    def copy(self) -> "VectorClock":
        return VectorClock(self._c)

    def get(self, tid: int) -> int:
        return self._c.get(tid, 0)

    def tick(self, tid: int) -> int:
        """Increment ``tid``'s component; returns the new clock value."""
        v = self._c.get(tid, 0) + 1
        self._c[tid] = v
        return v

    def join(self, other: "VectorClock") -> None:
        for tid, v in other._c.items():
            if v > self._c.get(tid, 0):
                self._c[tid] = v

    def dominates_epoch(self, epoch: Epoch) -> bool:
        """``epoch happens-before this clock`` (FastTrack's e ≤ C test)."""
        tid, clk = epoch
        return clk <= self._c.get(tid, 0)

    def epoch(self, tid: int) -> Epoch:
        return (tid, self._c.get(tid, 0))

    def items(self) -> Iterable[Tuple[int, int]]:
        return self._c.items()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(f"t{t}:{v}" for t, v in sorted(self._c.items()))
        return f"VC({body})"


class SyncVar:
    """A release/acquire rendezvous object (one per lock, task, barrier...)."""

    __slots__ = ("vc",)

    def __init__(self) -> None:
        self.vc = VectorClock()

    def release(self, from_vc: VectorClock) -> None:
        self.vc.join(from_vc)

    def acquire(self, into_vc: VectorClock) -> None:
        into_vc.join(self.vc)
