"""ThreadSanitizer core: FastTrack-style happens-before detection.

This is the engine under Archer (paper Section VI: "Archer was introduced as
a ThreadSanitizer extension to support OpenMP semantics").  Key modeled
properties:

* **Thread-centric** — clocks are per *OS thread*; accesses by two tasks the
  scheduler happened to serialize onto one thread are ordered by that
  thread's program order.  This is the mechanism behind Archer's
  single-thread false negatives on LULESH (paper Section V-B) and its
  schedule-dependent verdicts.
* **Observed-schedule only** — a pure happens-before detector can only flag
  races that are unordered *in the witnessed execution*.
* **Shadow reset on free** — TSan's allocator interceptors clear shadow state
  for freed ranges, so allocator recycling produces no false positives (the
  contrast to naive Taskgrind in Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.baselines.shadow import IntervalMap
from repro.baselines.vector_clock import Epoch, SyncVar, VectorClock
from repro.machine.debuginfo import SourceLocation


@dataclass
class TsanRace:
    """One detected race (pre-deduplication)."""

    lo: int
    hi: int
    kind: str                      # 'ww', 'rw', 'wr'
    thread_a: int
    thread_b: int
    loc_a: Optional[SourceLocation]
    loc_b: Optional[SourceLocation]

    def key(self) -> Tuple[str, str]:
        a, b = str(self.loc_a), str(self.loc_b)
        return (a, b) if a <= b else (b, a)


@dataclass
class _Cell:
    """Shadow payload for one byte range (FastTrack simplification)."""

    write_epoch: Optional[Epoch] = None
    write_loc: Optional[SourceLocation] = None
    #: last read epoch + loc per thread since the last write
    reads: Dict[int, Tuple[int, Optional[SourceLocation]]] = field(
        default_factory=dict)

    def clone(self) -> "_Cell":
        c = _Cell(self.write_epoch, self.write_loc)
        c.reads = dict(self.reads)
        return c


class TsanCore:
    """Vector clocks + shadow memory + race recording."""

    def __init__(self) -> None:
        self._vcs: Dict[int, VectorClock] = {}
        self._sync: Dict[object, SyncVar] = {}
        self.shadow: IntervalMap[_Cell] = IntervalMap()
        self.races: List[TsanRace] = []
        self.checked_accesses = 0

    # -- clocks ----------------------------------------------------------------

    def vc(self, tid: int) -> VectorClock:
        c = self._vcs.get(tid)
        if c is None:
            c = self._vcs[tid] = VectorClock({tid: 1})
        return c

    def sync_var(self, key: object) -> SyncVar:
        sv = self._sync.get(key)
        if sv is None:
            sv = self._sync[key] = SyncVar()
        return sv

    def release(self, tid: int, key: object) -> None:
        """``release(key)``: publish this thread's clock, then advance it."""
        self.sync_var(key).release(self.vc(tid))
        self.vc(tid).tick(tid)

    def acquire(self, tid: int, key: object) -> None:
        self.sync_var(key).acquire(self.vc(tid))

    # -- accesses -----------------------------------------------------------------

    def on_write(self, tid: int, lo: int, hi: int,
                 loc: Optional[SourceLocation]) -> None:
        self.checked_accesses += 1
        cur = self.vc(tid)
        epoch = cur.epoch(tid)

        def upd(cell: Optional[_Cell]) -> _Cell:
            cell = _Cell() if cell is None else cell.clone()
            if cell.write_epoch is not None and \
                    not cur.dominates_epoch(cell.write_epoch):
                self.races.append(TsanRace(lo, hi, "ww", cell.write_epoch[0],
                                           tid, cell.write_loc, loc))
            for rtid, (rclk, rloc) in cell.reads.items():
                if not cur.dominates_epoch((rtid, rclk)):
                    self.races.append(TsanRace(lo, hi, "rw", rtid, tid,
                                               rloc, loc))
            cell.write_epoch = epoch
            cell.write_loc = loc
            cell.reads = {}
            return cell

        self.shadow.update(lo, hi, upd)

    def on_read(self, tid: int, lo: int, hi: int,
                loc: Optional[SourceLocation]) -> None:
        self.checked_accesses += 1
        cur = self.vc(tid)

        def upd(cell: Optional[_Cell]) -> _Cell:
            cell = _Cell() if cell is None else cell.clone()
            if cell.write_epoch is not None and \
                    not cur.dominates_epoch(cell.write_epoch):
                self.races.append(TsanRace(lo, hi, "wr", cell.write_epoch[0],
                                           tid, cell.write_loc, loc))
            cell.reads[tid] = (cur.get(tid), loc)
            return cell

        self.shadow.update(lo, hi, upd)

    # -- allocator integration ---------------------------------------------------------

    def on_free_range(self, lo: int, hi: int) -> None:
        """TSan clears shadow on free: recycled memory starts clean."""
        self.shadow.clear_range(lo, hi)

    # -- results ------------------------------------------------------------------------

    def unique_races(self) -> List[TsanRace]:
        """TSan-style deduplication by source-location pair.

        Races recorded without source locations all collapse onto the
        ``(None, None)`` key; callers comparing by *address* (the fuzz
        oracle) must use :meth:`racy_ranges` instead.
        """
        seen: Set[Tuple[str, str]] = set()
        out: List[TsanRace] = []
        for race in self.races:
            k = race.key()
            if k not in seen:
                seen.add(k)
                out.append(race)
        return out

    def racy_ranges(self) -> List[Tuple[int, int]]:
        """Distinct racy byte ranges, location-independent.

        The address-level verdict the differential fuzz oracle compares:
        every ``(lo, hi)`` that carried at least one unordered conflicting
        pair, deduplicated by range rather than by report location.
        """
        return sorted({(race.lo, race.hi) for race in self.races})

    def memory_bytes(self, *, shadow_per_app_byte: int = 4,
                     cell_overhead: int = 48) -> int:
        return (self.shadow.covered_bytes * shadow_per_app_byte
                + len(self.shadow) * cell_overhead)
