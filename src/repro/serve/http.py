"""A minimal HTTP/1.1 layer over asyncio streams (stdlib only).

Just enough protocol for the JSON API: request line + headers +
``Content-Length`` bodies in, JSON documents out, keep-alive connections
so a chunk-streaming client reuses one socket for the whole upload.
Chunked transfer encoding is deliberately refused (501) — the trace
format is already chunked at the application layer, and the fixed-length
path keeps the parser small enough to audit.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, Optional
from urllib.parse import parse_qsl, unquote, urlsplit

#: refuse bodies above this many bytes (one trace *chunk*, not one trace)
MAX_BODY_BYTES = 64 * 1024 * 1024
MAX_HEADER_BYTES = 64 * 1024
#: an idle keep-alive connection is dropped after this long
IDLE_TIMEOUT_S = 60.0

_REASONS = {200: "OK", 201: "Created", 202: "Accepted", 204: "No Content",
            400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
            408: "Request Timeout", 409: "Conflict",
            413: "Payload Too Large", 422: "Unprocessable Entity",
            429: "Too Many Requests",
            500: "Internal Server Error", 501: "Not Implemented",
            503: "Service Unavailable"}


@dataclass
class Request:
    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes


@dataclass
class Response:
    status: int = 200
    doc: Optional[dict] = None
    body: Optional[bytes] = None
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    def encode(self) -> bytes:
        if self.body is not None:
            payload = self.body
        else:
            payload = (json.dumps(self.doc if self.doc is not None else {},
                                  sort_keys=False) + "\n").encode("utf-8")
        reason = _REASONS.get(self.status, "Unknown")
        head = [f"HTTP/1.1 {self.status} {reason}",
                f"Content-Type: {self.content_type}",
                f"Content-Length: {len(payload)}",
                "Connection: keep-alive"]
        for k, v in self.headers.items():
            head.append(f"{k}: {v}")
        return ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + payload


class ProtocolError(Exception):
    """A malformed request; carries the status to answer with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


async def _read_request(reader: asyncio.StreamReader,
                        *, max_body: int) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on clean EOF."""
    try:
        line = await asyncio.wait_for(reader.readline(), IDLE_TIMEOUT_S)
    except asyncio.TimeoutError:
        return None
    if not line.strip():
        if not line:        # EOF between requests: client hung up
            return None
        line = await reader.readline()   # tolerate one stray CRLF
        if not line.strip():
            return None
    parts = line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(400, f"malformed request line: {line!r}")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    hdr_bytes = 0
    while True:
        raw = await asyncio.wait_for(reader.readline(), IDLE_TIMEOUT_S)
        hdr_bytes += len(raw)
        if hdr_bytes > MAX_HEADER_BYTES:
            raise ProtocolError(400, "header block too large")
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _sep, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    if "transfer-encoding" in headers:
        raise ProtocolError(501, "chunked transfer encoding not supported")
    length = int(headers.get("content-length", "0") or "0")
    if length > max_body:
        raise ProtocolError(413, f"body of {length} bytes exceeds the "
                                 f"{max_body}-byte chunk limit")
    body = await reader.readexactly(length) if length else b""
    split = urlsplit(target)
    return Request(method=method.upper(), path=unquote(split.path),
                   query=dict(parse_qsl(split.query)), headers=headers,
                   body=body)


async def serve_connection(reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter,
                           handler: Callable[[Request], Awaitable[Response]],
                           *, max_body: int = MAX_BODY_BYTES) -> None:
    """Drive one keep-alive connection through the request handler."""
    try:
        while True:
            try:
                req = await _read_request(reader, max_body=max_body)
            except ProtocolError as exc:
                writer.write(Response(
                    status=exc.status,
                    doc={"error": {"type": "ProtocolError",
                                   "message": str(exc)}}).encode())
                await writer.drain()
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            if req is None:
                return
            resp = await handler(req)
            writer.write(resp.encode())
            await writer.drain()
            if req.headers.get("connection", "").lower() == "close":
                return
    except (ConnectionError, asyncio.CancelledError):
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass
