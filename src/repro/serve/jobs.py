"""Sharded analysis job pool for the ingestion server.

Each shard is one asyncio queue drained by one worker coroutine; CPU-bound
analysis runs on a thread pool (one thread per shard) via
``run_in_executor``, so the event loop keeps serving uploads while jobs
grind.  Shard selection hashes the trace's **content hash**, which gives
cache affinity for free: re-analyses of the same trace land on the same
shard and hit its warm graph.

The job executor reuses :func:`repro.core.trace.analyze_loaded` — the same
supervised deadline/retry/quarantine machinery as the offline pipeline —
so a hung or crashing analysis worker degrades the job to a *partial*
report with ``unchecked_pairs`` accounting instead of wedging the shard.

Job lifecycle: ``queued → running → done | degraded | failed``.
``degraded`` means the report is well-formed but carries incomplete-
evidence or incomplete-analysis notes (salvaged upload, quarantined
chunks); ``failed`` means an exception escaped the executor and there is
no report.  Every state change books ``serve.jobs.*`` metrics, and each
job records its own phase spans (queue-wait/build/analyze/report) for the
per-job Chrome-trace timeline artifact.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import JobStateError, ResourceNotFound
from repro.obs.metrics import get_registry

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
DEGRADED = "degraded"
FAILED = "failed"
TERMINAL = frozenset({DONE, DEGRADED, FAILED})


@dataclass
class AnalysisJob:
    """One enqueued analysis of one uploaded trace."""

    job_id: str
    trace_id: str
    content_hash: str
    shard: int
    params: dict
    state: str = QUEUED
    submitted_at: float = field(default_factory=time.perf_counter)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: (name, start-offset-seconds, duration-seconds) relative to submit
    spans: List[Tuple[str, float, float]] = field(default_factory=list)
    cache_hit: bool = False
    error: Optional[dict] = None
    result: Optional[dict] = None
    #: how many times an executor actually ran this job — the chaos bench
    #: asserts it never exceeds 1 across a kill/restart cycle
    executions: int = 0
    #: True when this job was rebuilt from the journal after a restart
    recovered: bool = False
    _done: threading.Event = field(default_factory=threading.Event)

    @contextlib.contextmanager
    def span(self, name: str):
        t0 = time.perf_counter()
        try:
            yield
        finally:
            t1 = time.perf_counter()
            self.spans.append((name, t0 - self.submitted_at, t1 - t0))

    def status_dict(self) -> dict:
        now = time.perf_counter()
        doc = {
            "job_id": self.job_id,
            "trace_id": self.trace_id,
            "content_hash": self.content_hash,
            "state": self.state,
            "shard": self.shard,
            "params": dict(self.params),
            "cache_hit": self.cache_hit,
            "recovered": self.recovered,
            "queue_wait_s": ((self.started_at or now) - self.submitted_at),
            "phases": {name: dur for name, _start, dur in self.spans},
        }
        if self.finished_at is not None:
            doc["elapsed_s"] = self.finished_at - self.submitted_at
        if self.error is not None:
            doc["error"] = dict(self.error)
        if self.result is not None:
            doc["error_count"] = self.result.get("error_count")
        return doc

    def timeline_events(self) -> List[dict]:
        """The job's phases as Chrome trace-event ``X`` spans (µs)."""
        def us(seconds: float) -> int:
            return max(0, int(seconds * 1e6))
        events = [{"ph": "M", "ts": 0, "pid": 1, "tid": self.shard,
                   "name": "thread_name",
                   "args": {"name": f"shard-{self.shard}"}}]
        if self.started_at is not None:
            events.append({
                "ph": "X", "ts": 0, "pid": 1, "tid": self.shard,
                "name": "queue-wait", "cat": "serve",
                "dur": us(self.started_at - self.submitted_at)})
        for name, start, dur in sorted(self.spans, key=lambda s: s[1]):
            events.append({"ph": "X", "ts": us(start), "pid": 1,
                           "tid": self.shard, "name": name, "cat": "serve",
                           "dur": us(dur),
                           "args": {"job": self.job_id}})
        return events

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state (test helper)."""
        return self._done.wait(timeout)


class JobPool:
    """The sharded queues + executor threads behind ``POST .../analyze``."""

    def __init__(self, execute: Callable[[AnalysisJob], Tuple[dict, bool]],
                 *, shards: int = 4, durable=None) -> None:
        self.shards = max(1, shards)
        self._execute_fn = execute
        self._queues: List[asyncio.Queue] = []
        self._workers: List[asyncio.Task] = []
        self._pool: Optional[ThreadPoolExecutor] = None
        self._jobs: Dict[str, AnalysisJob] = {}
        self._next_id = 0
        self._lock = threading.Lock()
        self._durable = durable

    def shard_of(self, content_hash: str) -> int:
        return int(content_hash[:8] or "0", 16) % self.shards

    # -- lifecycle (event-loop side) ----------------------------------------

    async def start(self) -> None:
        self._pool = ThreadPoolExecutor(max_workers=self.shards,
                                        thread_name_prefix="serve-shard")
        self._queues = [asyncio.Queue() for _ in range(self.shards)]
        self._workers = [asyncio.ensure_future(self._drain(k))
                         for k in range(self.shards)]

    async def stop(self) -> None:
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            with contextlib.suppress(asyncio.CancelledError):
                await task
        self._workers = []
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # -- submission / lookup -------------------------------------------------

    def create(self, trace_id: str, content_hash: str,
               params: dict) -> AnalysisJob:
        with self._lock:
            self._next_id += 1
            job = AnalysisJob(job_id=f"j{self._next_id}", trace_id=trace_id,
                              content_hash=content_hash,
                              shard=self.shard_of(content_hash),
                              params=params)
            self._jobs[job.job_id] = job
        return job

    def get(self, job_id: str) -> AnalysisJob:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ResourceNotFound("job", job_id)
        return job

    def report_of(self, job_id: str) -> dict:
        job = self.get(job_id)
        if job.state in (QUEUED, RUNNING):
            raise JobStateError(job.job_id, job.state,
                                "report not ready; poll GET /v1/jobs/{id}")
        if job.result is None:
            raise JobStateError(job.job_id, job.state,
                                "job failed without a report: "
                                + str((job.error or {}).get("message")))
        return job.result

    def active_count(self) -> int:
        """Non-terminal jobs — the admission controller's queue-depth
        measure (queued *and* running both hold resources)."""
        with self._lock:
            return sum(1 for j in self._jobs.values()
                       if j.state not in TERMINAL)

    async def submit(self, job: AnalysisJob, *, journal: bool = True) -> None:
        if journal and self._durable is not None:
            # write-ahead: enqueue survives a crash before execution.
            # Recovered jobs re-submit with journal=False — compaction
            # already re-emitted their record, and journaling again would
            # violate the exactly-once re-enqueue contract.
            self._durable.job_enqueued(job.job_id, job.trace_id,
                                       job.content_hash, job.params)
        reg = get_registry()
        reg.counter("serve.jobs.submitted").inc()
        reg.gauge("serve.jobs.inflight").set(
            sum(1 for j in self._jobs.values() if j.state not in TERMINAL))
        await self._queues[job.shard].put(job)

    async def drain(self) -> None:
        """Graceful shutdown: wait for every queued job to finish."""
        for queue in self._queues:
            await queue.join()

    # -- the shard worker ----------------------------------------------------

    async def _drain(self, shard: int) -> None:
        loop = asyncio.get_event_loop()
        queue = self._queues[shard]
        while True:
            job = await queue.get()
            job.started_at = time.perf_counter()
            job.state = RUNNING
            reg = get_registry()
            reg.histogram("serve.jobs.queue_wait_us").observe(
                (job.started_at - job.submitted_at) * 1e6)
            try:
                await loop.run_in_executor(self._pool, self._run_one, job)
            finally:
                queue.task_done()

    def _run_one(self, job: AnalysisJob) -> None:
        reg = get_registry()
        job.executions += 1
        try:
            result, degraded = self._execute_fn(job)
            state = DEGRADED if degraded else DONE
            if self._durable is not None:
                # write-ahead: the terminal record (and its result blob)
                # are durable before clients can observe the state.  If a
                # kill fires inside this append, the journal freezes, the
                # raise lands in the except arm, and the restarted server
                # re-enqueues the job — losing the finish, never the job.
                self._durable.job_terminal(job.job_id, state, result=result)
            job.result = result
            job.state = state
            reg.counter("serve.jobs.degraded" if degraded
                        else "serve.jobs.completed").inc()
        except Exception as exc:  # noqa: BLE001 — shard must survive any job
            job.error = {"type": type(exc).__name__, "message": str(exc)}
            job.state = FAILED
            if self._durable is not None:
                # a frozen (killed) journal makes this a no-op, which is
                # exactly right: a dead server journals nothing
                self._durable.job_terminal(job.job_id, FAILED,
                                           error=job.error)
            reg.counter("serve.jobs.failed").inc()
        finally:
            job.finished_at = time.perf_counter()
            reg.histogram("serve.jobs.exec_us").observe(
                (job.finished_at - job.started_at) * 1e6)
            job._done.set()

    # -- crash recovery ------------------------------------------------------

    def restore(self, recovered) -> List[AnalysisJob]:
        """Rebuild jobs from a :class:`~repro.serve.durable.RecoveredState`.

        Terminal jobs come back with their byte-identical result document
        and a set done-event; jobs that were queued or running when the
        server died are returned for the caller to re-submit **exactly
        once** after the pool starts (they cannot be queued here — the
        event loop does not exist yet).
        """
        requeue: List[AnalysisJob] = []
        with self._lock:
            for rec in recovered.jobs.values():
                job = AnalysisJob(job_id=rec.job_id, trace_id=rec.trace_id,
                                  content_hash=rec.content_hash,
                                  shard=self.shard_of(rec.content_hash),
                                  params=dict(rec.params), recovered=True)
                if rec.state is not None:
                    job.state = rec.state
                    job.result = rec.result
                    job.error = rec.error
                    job.finished_at = job.submitted_at
                    job._done.set()
                else:
                    requeue.append(job)
                self._jobs[job.job_id] = job
            self._next_id = max(self._next_id, recovered.max_job_num)
        return requeue
