"""Server plumbing: asyncio lifecycle + an in-process thread harness.

:class:`TraceServer` owns the listening socket and the job pool's worker
tasks on whatever event loop calls it.  :class:`ServerThread` wraps that
in a daemon thread with its own loop — the shape the tests and the load
bench use to talk real HTTP to an in-process server with zero setup.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from repro.serve.app import ServeConfig, TraceService
from repro.serve.http import serve_connection


class TraceServer:
    """One listening endpoint bound to one :class:`TraceService`."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.service = TraceService(self.config)
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        await self.service.pool.start()
        # jobs recovered as queued/running re-enter the shard queues now
        # that workers exist — exactly once, no re-journaling
        await self.service.resume_recovered()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        await self.service.pool.stop()
        # journals the clean-shutdown marker — unless the log was frozen
        # by a kill, in which case this is a no-op and recovery correctly
        # classifies the restart as a crash
        self.service.close()

    async def drain(self) -> None:
        """Graceful SIGTERM path: stop accepting, finish queued jobs.

        New work-accepting requests get a typed 503 (``draining``) while
        already-queued jobs run to completion and journal their terminal
        records; only then does the server stop and write the
        clean-shutdown marker.
        """
        self.service.draining = True
        await self.service.pool.drain()
        await self.stop()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await serve_connection(reader, writer, self.service.handle)
        finally:
            if task is not None:
                self._connections.discard(task)


class ServerThread:
    """An in-process server on a daemon-thread event loop.

    ``with ServerThread() as srv: client = ServeClient(srv.base_url)`` —
    used by the unit tests, the serve-smoke CLI and the load generator.
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.server = TraceServer(config)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()

    @property
    def service(self) -> "TraceService":
        return self.server.service

    @property
    def base_url(self) -> str:
        host = self.server.config.host
        return f"http://{host}:{self.server.port}"

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        loop.run_until_complete(self.server.start())
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.server.stop())
            loop.close()

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run,
                                        name="serve-loop", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("server thread failed to start")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)
            self._loop = None
            self._thread = None

    def kill(self) -> None:
        """SIGKILL simulation: freeze the journal *first*, then stop.

        Freezing makes every subsequent append — including the clean-
        shutdown marker and any in-flight job's terminal record — a
        silent no-op, exactly what a killed process would have written.
        A restart against the same state dir then exercises real crash
        recovery.
        """
        durable = self.server.service.durable
        if durable is not None:
            durable.freeze()
        self.stop()

    def drain(self) -> None:
        """Run the graceful SIGTERM drain on the server's loop, then stop."""
        if self._loop is None or self._thread is None:
            return
        import asyncio as _asyncio
        fut = _asyncio.run_coroutine_threadsafe(self.server.drain(),
                                                self._loop)
        fut.result(timeout=60)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
