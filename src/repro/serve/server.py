"""Server plumbing: asyncio lifecycle + an in-process thread harness.

:class:`TraceServer` owns the listening socket and the job pool's worker
tasks on whatever event loop calls it.  :class:`ServerThread` wraps that
in a daemon thread with its own loop — the shape the tests and the load
bench use to talk real HTTP to an in-process server with zero setup.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from repro.serve.app import ServeConfig, TraceService
from repro.serve.http import serve_connection


class TraceServer:
    """One listening endpoint bound to one :class:`TraceService`."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.service = TraceService(self.config)
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        await self.service.pool.start()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        await self.service.pool.stop()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await serve_connection(reader, writer, self.service.handle)
        finally:
            if task is not None:
                self._connections.discard(task)


class ServerThread:
    """An in-process server on a daemon-thread event loop.

    ``with ServerThread() as srv: client = ServeClient(srv.base_url)`` —
    used by the unit tests, the serve-smoke CLI and the load generator.
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.server = TraceServer(config)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()

    @property
    def service(self) -> "TraceService":
        return self.server.service

    @property
    def base_url(self) -> str:
        host = self.server.config.host
        return f"http://{host}:{self.server.port}"

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        loop.run_until_complete(self.server.start())
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.server.stop())
            loop.close()

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run,
                                        name="serve-loop", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("server thread failed to start")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)
            self._loop = None
            self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
