"""``python -m repro serve`` — boot the ingestion server (or its smoke).

Plain mode binds the asyncio server and runs until interrupted:

    python -m repro serve --port 8787 --shards 4

``--smoke`` is the self-contained check the ``serve-smoke`` CI job runs:
record a racy synthetic trace (plus a fuzz-corpus reproducer when the
corpus is present), upload it chunk-by-chunk over real HTTP to an
in-process server, analyze, and assert the served race report is
**byte-identical** to ``repro.core.offline`` on the same trace file.  It
also proves cache keying (a re-upload of the same content triggers zero
graph rebuilds) and validates the job timeline artifact with
:mod:`repro.obs.tracecheck`.  Artifacts (trace, both reports, timeline)
land in ``--out`` for CI upload on failure.  Exit 0 on parity, 1 on any
divergence.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
from typing import List, Optional

from repro.errors import StateDirError
from repro.serve.app import ServeConfig
from repro.serve.wal import FSYNC_POLICIES

# --stats/--trace-timeline are extracted by the repro launcher before the
# subcommand sees argv, so this parser only owns serve's own knobs.


def _build_config(args: argparse.Namespace) -> ServeConfig:
    return ServeConfig(host=args.host, port=args.port, shards=args.shards,
                       analysis_mode=args.mode,
                       analysis_workers=args.workers,
                       deadline_s=args.deadline_s,
                       max_retries=args.max_retries,
                       state_dir=args.state_dir,
                       fsync=args.fsync)


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro serve", description=__doc__.splitlines()[0])
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=8787,
                    help="listen port; 0 for kernel-assigned (default: 8787)")
    ap.add_argument("--shards", type=int, default=4,
                    help="worker shards draining analysis jobs (default: 4)")
    ap.add_argument("--mode", default="parallel",
                    choices=("parallel", "indexed", "naive"),
                    help="default analysis mode for jobs (default: "
                         "parallel — supervised with quarantine)")
    ap.add_argument("--workers", type=int, default=2,
                    help="supervised analysis workers per job (default: 2)")
    ap.add_argument("--deadline-s", type=float, default=None,
                    help="per-chunk supervised deadline (default: none)")
    ap.add_argument("--max-retries", type=int, default=2)
    ap.add_argument("--state-dir", default=None,
                    help="durable state directory (WAL + chunk store); "
                         "restarts recover uploads and jobs from it "
                         "(default: in-memory, nothing survives)")
    ap.add_argument("--fsync", default="always", choices=FSYNC_POLICIES,
                    help="WAL fsync policy (default: always)")
    ap.add_argument("--smoke", action="store_true",
                    help="run the record→upload→analyze→diff self-test "
                         "instead of serving")
    ap.add_argument("--smoke-recovery", action="store_true",
                    help="run the kill→restart→resume durability self-test "
                         "(requires --state-dir; implies an in-process "
                         "server pair)")
    ap.add_argument("--out", default="serve-smoke",
                    help="smoke artifact directory (default: serve-smoke)")
    args = ap.parse_args(argv)
    try:
        if args.smoke_recovery:
            if args.state_dir is None:
                print("serve: --smoke-recovery requires --state-dir",
                      file=sys.stderr)
                return 2
            return run_recovery_smoke(_build_config(args), args.out)
        if args.smoke:
            return run_smoke(_build_config(args), args.out)
        return _serve_forever(_build_config(args))
    except StateDirError as exc:
        # a durable server must refuse to start, never silently fall back
        # to in-memory state — one-line blame, non-zero exit
        print(f"serve: cannot start durable server: {exc}", file=sys.stderr)
        return 2


def _serve_forever(config: ServeConfig) -> int:
    from repro.serve.server import TraceServer

    async def _run() -> None:
        server = TraceServer(config)
        await server.start()
        print(f"taskgrind-serve listening on http://{config.host}:"
              f"{server.port} ({config.shards} shards, "
              f"mode={config.analysis_mode}"
              + (f", state-dir={config.state_dir}"
                 if config.state_dir else "") + ")", flush=True)
        loop = asyncio.get_event_loop()
        drained = asyncio.Event()

        def _on_sigterm() -> None:
            print("SIGTERM: draining (finishing queued jobs, refusing "
                  "new work)", flush=True)
            drained.set()

        try:
            loop.add_signal_handler(signal.SIGTERM, _on_sigterm)
        except (NotImplementedError, RuntimeError):
            pass                # non-unix event loops: ctrl-C only
        serve_task = asyncio.ensure_future(server.serve_forever())
        drain_task = asyncio.ensure_future(drained.wait())
        try:
            await asyncio.wait({serve_task, drain_task},
                               return_when=asyncio.FIRST_COMPLETED)
        finally:
            serve_task.cancel()
            if drained.is_set():
                await server.drain()
                print("drain complete; clean shutdown journaled",
                      flush=True)
            else:
                await server.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("interrupted; shutting down")
    return 0


# ---------------------------------------------------------------------------
# the serve-smoke self-test
# ---------------------------------------------------------------------------

def run_smoke(config: ServeConfig, out_dir: str) -> int:
    from repro.bench.serve import (_repo_root, materialize_traces)
    from repro.core.reports import report_to_dict
    from repro.core.trace import analyze_trace
    from repro.obs.tracecheck import validate_events
    from repro.serve.client import ServeClient, read_trace_lines
    from repro.serve.server import ServerThread

    os.makedirs(out_dir, exist_ok=True)
    corpus = _repo_root() / "tests" / "fuzz" / "corpus"
    traces = materialize_traces(out_dir,
                                corpus_dir=str(corpus)
                                if corpus.is_dir() else None,
                                max_traces=3,
                                programs=("heat-racy",))
    failures: List[str] = []
    config.port = 0          # the smoke must not collide with a live server
    with ServerThread(config) as srv, ServeClient(srv.base_url) as client:
        for name, path in traces:
            offline = [report_to_dict(r) for r in analyze_trace(path)]
            offline_bytes = json.dumps(offline, sort_keys=True, indent=2)
            lines = read_trace_lines(path)
            trace_id, _ack = client.upload_trace(lines)
            job_id = client.analyze(trace_id)
            status = client.wait(job_id, timeout=120.0)
            http_status, report = client.report(job_id)
            slug = name.replace(":", "_").replace("/", "_")
            with open(os.path.join(out_dir, f"{slug}.server.json"),
                      "w") as fh:
                json.dump(report, fh, indent=2, sort_keys=True)
            with open(os.path.join(out_dir, f"{slug}.offline.json"),
                      "w") as fh:
                fh.write(offline_bytes + "\n")
            if http_status != 200 or status["state"] != "done":
                failures.append(f"{name}: job ended {status['state']} "
                                f"(report {http_status})")
                continue
            server_bytes = json.dumps(report["errors"], sort_keys=True,
                                      indent=2)
            if server_bytes != offline_bytes:
                failures.append(f"{name}: server report != offline report "
                                f"(see {out_dir}/{slug}.*.json)")
            else:
                print(f"  {name}: {report['error_count']} report(s), "
                      "byte-identical to repro.core.offline")
            timeline = client.timeline(job_id)
            problems = validate_events(timeline["traceEvents"])
            if problems:
                failures.append(f"{name}: invalid job timeline: "
                                + "; ".join(problems))
            with open(os.path.join(out_dir, f"{slug}.timeline.json"),
                      "w") as fh:
                json.dump(timeline, fh, indent=2)

        # cache keying: re-upload + re-analyze the first trace must not
        # rebuild its graph (content hash hits the warm entry)
        name, path = traces[0]
        builds_before = srv.service.cache.graph_builds
        trace_id, _ack = client.upload_trace(read_trace_lines(path))
        job_id = client.analyze(trace_id)
        client.wait(job_id, timeout=120.0)
        builds_after = srv.service.cache.graph_builds
        if builds_after != builds_before:
            failures.append(
                f"cache: re-upload of {name} rebuilt the graph "
                f"({builds_before} -> {builds_after} builds)")
        else:
            print(f"  cache: re-upload of {name} hit the warm graph "
                  f"({builds_after} total builds)")

    if failures:
        for f in failures:
            print(f"SMOKE FAILURE: {f}", file=sys.stderr)
        return 1
    print(f"serve smoke passed ({len(traces)} trace(s); "
          f"artifacts in {out_dir}/)")
    return 0


# ---------------------------------------------------------------------------
# the restart-recovery self-test (CI serve-smoke's durability step)
# ---------------------------------------------------------------------------

def run_recovery_smoke(config: ServeConfig, out_dir: str) -> int:
    """Upload half a trace, kill the server, restart, resume, compare.

    Proves the ``--state-dir`` contract end to end: the restarted server
    reports the exact journaled ``next_seq``, the resumed upload seals
    with the same content hash a one-shot upload produces, and the
    analysis report is byte-identical to ``repro.core.offline``.
    """
    from repro.bench.serve import materialize_traces
    from repro.core.reports import report_to_dict
    from repro.core.trace import analyze_trace
    from repro.serve.client import ServeClient, read_trace_lines
    from repro.serve.server import ServerThread

    os.makedirs(out_dir, exist_ok=True)
    traces = materialize_traces(out_dir, corpus_dir=None, max_traces=1,
                                programs=("heat-racy",))
    name, path = traces[0]
    lines = read_trace_lines(path)
    half = max(1, len(lines) // 2)
    failures: List[str] = []
    config.port = 0

    srv = ServerThread(config).start()
    try:
        with ServeClient(srv.base_url) as client:
            trace_id = client.create_trace()
            for seq in range(half):
                status, ack = client.upload_chunk(trace_id, seq, lines[seq])
                if status != 200:
                    failures.append(f"{name}: chunk {seq} rejected "
                                    f"pre-kill: {status} {ack}")
    finally:
        srv.kill()              # SIGKILL simulation: no clean-shutdown
    if failures:
        for f in failures:
            print(f"RECOVERY SMOKE FAILURE: {f}", file=sys.stderr)
        return 1

    srv = ServerThread(config).start()
    try:
        with ServeClient(srv.base_url) as client:
            recovered = client.trace_status(trace_id)
            if recovered["next_seq"] != half or not recovered["recovered"]:
                failures.append(
                    f"{name}: restart reports next_seq="
                    f"{recovered['next_seq']} recovered="
                    f"{recovered['recovered']}, expected {half}/True")
            print(f"  {name}: recovered at next_seq="
                  f"{recovered['next_seq']} after kill; resuming")
            _tid, ack = client.upload_trace(lines, resume=trace_id)
            if ack.get("state") != "complete":
                failures.append(f"{name}: resumed upload did not seal: "
                                f"{ack}")
            job_id = client.analyze(trace_id)
            client.wait(job_id, timeout=120.0)
            http_status, report = client.report(job_id)
            offline = [report_to_dict(r) for r in analyze_trace(path)]
            offline_bytes = json.dumps(offline, sort_keys=True, indent=2)
            server_bytes = json.dumps(report.get("errors"),
                                      sort_keys=True, indent=2)
            if http_status != 200 or server_bytes != offline_bytes:
                failures.append(
                    f"{name}: post-recovery report diverges from offline "
                    f"(status {http_status})")
            else:
                print(f"  {name}: post-recovery report byte-identical "
                      f"to repro.core.offline "
                      f"({report['error_count']} report(s))")
    finally:
        srv.stop()

    if failures:
        for f in failures:
            print(f"RECOVERY SMOKE FAILURE: {f}", file=sys.stderr)
        return 1
    print(f"serve recovery smoke passed (state dir {config.state_dir})")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI
    sys.exit(main())
