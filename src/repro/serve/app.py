"""The race-analysis service: routes, job executor, error mapping.

Request handlers run on the event loop and stay cheap (edge validation,
queue pushes, dict lookups); the only CPU-heavy work — graph assembly and
Algorithm 1 — happens in :class:`~repro.serve.jobs.JobPool` executor
threads.  Report documents are **content-addressed**: they carry the
upload's content hash but no job ids, so a cache hit can serve the exact
bytes a previous job produced and the serve-smoke byte-parity check
against ``repro.core.offline`` is meaningful.

Error mapping (the :mod:`repro.errors` taxonomy → HTTP):

====================================  ======
:class:`TraceFormatError` (+Version)  400
:class:`ResourceNotFound`             404
:class:`UploadSequenceError`          409
:class:`JobStateError`                409
:class:`TraceCorruptionError`         422
:class:`ServeOverloadError`           429 (503 while draining), with a
                                      ``Retry-After`` header
:class:`InjectedFault` (upload path)  503
anything else                         500
====================================  ======
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.reports import report_to_dict
from repro.core.trace import analyze_loaded
from repro.errors import (InjectedFault, JobStateError, ResourceNotFound,
                          ServeError, ServeOverloadError,
                          TraceCorruptionError, TraceFormatError,
                          UploadSequenceError)
from repro.obs.metrics import get_registry
from repro.serve.cache import BuildCache
from repro.serve.durable import DurableLog
from repro.serve.http import Request, Response
from repro.serve.jobs import AnalysisJob, JobPool
from repro.serve.overload import AdmissionControl, CircuitBreaker
from repro.serve.store import TraceStore

import json

REPORT_SCHEMA = "taskgrind-serve-report/1"

_STATUS_OF = ((UploadSequenceError, 409), (JobStateError, 409),
              (ResourceNotFound, 404), (TraceCorruptionError, 422),
              (TraceFormatError, 400), (ServeOverloadError, 429),
              (InjectedFault, 503))


def error_response(exc: Exception) -> Response:
    for cls, status in _STATUS_OF:
        if isinstance(exc, cls):
            body = {"type": type(exc).__name__, "message": str(exc)}
            if isinstance(exc, ServeError):
                body.update(exc.fields())
            if isinstance(exc, InjectedFault):
                body["fault_kind"] = exc.fault_kind
            if isinstance(exc, TraceCorruptionError):
                body.update({"chunk_seq": exc.chunk_seq,
                             "byte_offset": exc.byte_offset})
            headers = {}
            if isinstance(exc, ServeOverloadError):
                # a draining server is *going away*, not momentarily busy
                status = 503 if exc.draining else 429
                headers["Retry-After"] = f"{exc.retry_after_s:.3f}"
            return Response(status=status, doc={"error": body},
                            headers=headers)
    return Response(status=500, doc={"error": {
        "type": type(exc).__name__, "message": str(exc)}})


@dataclass
class ServeConfig:
    host: str = "127.0.0.1"
    port: int = 0                      # 0: kernel-assigned (tests/bench)
    shards: int = 4
    analysis_mode: str = "parallel"    # supervised: deadline/retry/quarantine
    analysis_workers: int = 2
    deadline_s: Optional[float] = None
    max_retries: int = 2
    kernel: str = "auto"
    graph_cache: int = 32
    result_cache: int = 128
    #: durable state directory (None: in-memory only, nothing survives)
    state_dir: Optional[str] = None
    fsync: str = "always"              # WAL fsync policy: always|interval|never
    #: admission control: bounded queue depth + in-flight upload bytes
    max_queue_depth: int = 256
    max_upload_bytes: int = 256 * 1024 * 1024
    retry_after_s: float = 0.25
    #: per-endpoint circuit breaker (consecutive 5xx → open for cooldown)
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 1.0


class TraceService:
    """Everything behind the routes; owns store, caches and the pool."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        cfg = self.config
        self.durable: Optional[DurableLog] = None
        if cfg.state_dir is not None:
            # raises StateDirError on an unusable dir: a server asked to
            # be durable must refuse to start, not fall back to memory
            self.durable = DurableLog(cfg.state_dir,
                                      fsync_policy=cfg.fsync)
        self.store = TraceStore(durable=self.durable)
        self.cache = BuildCache(graph_capacity=cfg.graph_cache,
                                result_capacity=cfg.result_cache)
        self.pool = JobPool(self._execute_job, shards=cfg.shards,
                            durable=self.durable)
        self.admission = AdmissionControl(
            max_queue_depth=cfg.max_queue_depth,
            max_upload_bytes=cfg.max_upload_bytes,
            retry_after_s=cfg.retry_after_s)
        self.breaker = CircuitBreaker(threshold=cfg.breaker_threshold,
                                      cooldown_s=cfg.breaker_cooldown_s)
        self.draining = False
        self._requeue: List[AnalysisJob] = []
        if self.durable is not None:
            self.store.restore(self.durable.recovered)
            self._requeue = self.pool.restore(self.durable.recovered)
        self.started_at = time.time()

    async def resume_recovered(self) -> None:
        """Re-enqueue jobs that were queued/running at crash time.

        Called once by the server after the pool's workers exist; submits
        with ``journal=False`` because recovery compaction already
        re-emitted each job's ``job-enqueued`` record — exactly once.
        """
        jobs, self._requeue = self._requeue, []
        for job in jobs:
            await self.pool.submit(job, journal=False)

    def close(self, *, clean: bool = True) -> None:
        """Release the durable log (journaling the clean-shutdown marker
        on a graceful stop; a frozen/killed journal ignores both)."""
        if self.durable is not None:
            if clean:
                self.durable.clean_shutdown()
            self.durable.close()

    def _admit(self, endpoint: str) -> None:
        """Work-accepting endpoints check drain state + circuit breaker."""
        if self.draining:
            raise ServeOverloadError(endpoint, draining=True,
                                     retry_after_s=self.config.retry_after_s)
        self.breaker.check(endpoint)

    # -- routing -------------------------------------------------------------

    async def handle(self, req: Request) -> Response:
        reg = get_registry()
        endpoint, resp = "unmatched", None
        t0 = time.perf_counter()
        try:
            endpoint, resp = await self._dispatch(req)
        except Exception as exc:  # noqa: BLE001 — every error becomes JSON
            resp = error_response(exc)
        finally:
            reg.counter(f"serve.http.{endpoint}.requests").inc()
            if resp is not None and resp.status >= 400:
                reg.counter(f"serve.http.{endpoint}.errors").inc()
            if resp is not None:
                self.breaker.record(endpoint, resp.status)
            reg.histogram(f"serve.http.{endpoint}.us").observe(
                (time.perf_counter() - t0) * 1e6)
        return resp

    async def _dispatch(self, req: Request) -> Tuple[str, Response]:
        parts = [p for p in req.path.split("/") if p]
        method = req.method
        if parts == ["healthz"] and method == "GET":
            return "healthz", Response(doc={"ok": True,
                                            "uptime_s": time.time()
                                            - self.started_at})
        if parts == ["metrics"] and method == "GET":
            return "metrics", Response(
                body=get_registry().render_prom().encode("utf-8"),
                content_type="text/plain; version=0.0.4")
        if parts[:1] == ["v1"] and len(parts) >= 2:
            if parts[1] == "traces":
                return await self._dispatch_traces(method, parts, req)
            if parts[1] == "jobs":
                return await self._dispatch_jobs(method, parts)
        return "unmatched", Response(status=404, doc={"error": {
            "type": "ResourceNotFound",
            "message": f"no route for {method} {req.path}"}})

    async def _run(self, endpoint: str, fn, *args) -> Tuple[str, Response]:
        """Run one matched route; errors become responses *with the
        endpoint attributed*, which the circuit breaker depends on."""
        try:
            resp = fn(*args)
            if asyncio.iscoroutine(resp):
                resp = await resp
            return endpoint, resp
        except Exception as exc:  # noqa: BLE001 — every error becomes JSON
            return endpoint, error_response(exc)

    async def _dispatch_traces(self, method: str, parts,
                               req: Request) -> Tuple[str, Response]:
        if parts == ["v1", "traces"] and method == "POST":
            return await self._run("create_trace", self._create_trace)
        if len(parts) == 5 and parts[3] == "chunks" and method == "PUT":
            return await self._run("upload_chunk", self._upload_chunk,
                                   parts[2], parts[4], req)
        if len(parts) == 3 and method == "GET":
            return await self._run("trace_status", lambda: Response(
                doc=self.store.get(parts[2]).to_dict()))
        if len(parts) == 4 and parts[3] == "analyze" and method == "POST":
            return await self._run("analyze", self._start_analysis,
                                   parts[2], req)
        raise ResourceNotFound("route", "/".join(parts))

    async def _dispatch_jobs(self, method: str,
                             parts) -> Tuple[str, Response]:
        if method != "GET" or len(parts) not in (3, 4):
            raise ResourceNotFound("route", "/".join(parts))
        if len(parts) == 3:
            return await self._run("job_status", lambda: Response(
                doc=self.pool.get(parts[2]).status_dict()))
        if parts[3] == "report":
            return await self._run("report", self._report, parts[2])
        if parts[3] == "timeline":
            return await self._run("timeline", lambda: Response(doc={
                "displayTimeUnit": "ms",
                "traceEvents": self.pool.get(parts[2]).timeline_events()}))
        raise ResourceNotFound("route", "/".join(parts))

    def _create_trace(self) -> Response:
        self._admit("create_trace")
        up = self.store.create()
        return Response(status=201, doc=up.to_dict())

    def _upload_chunk(self, trace_id: str, seq_str: str,
                      req: Request) -> Response:
        self._admit("upload_chunk")
        try:
            seq = int(seq_str)
        except ValueError:
            raise TraceFormatError(trace_id,
                                   f"non-integer seq {seq_str!r}") from None
        self.admission.admit_upload(self.store.open_bytes(), len(req.body))
        with get_registry().phase("serve.ingest"):
            ack = self.store.add_chunk(trace_id, seq, req.body)
        return Response(doc=ack)

    def _report(self, job_id: str) -> Response:
        job = self.pool.get(job_id)
        doc = dict(self.pool.report_of(job_id))
        doc["job_id"] = job.job_id
        doc["trace_id"] = job.trace_id
        return Response(doc=doc)

    async def _start_analysis(self, trace_id: str, req: Request) -> Response:
        self._admit("analyze")
        self.admission.admit_job(self.pool.active_count())
        up = self.store.get(trace_id)
        try:
            opts = json.loads(req.body) if req.body.strip() else {}
        except json.JSONDecodeError as exc:
            raise TraceFormatError(trace_id,
                                   f"analyze options: {exc.msg}") from exc
        cfg = self.config
        params = {
            "mode": opts.get("mode", cfg.analysis_mode),
            "workers": int(opts.get("workers", cfg.analysis_workers)),
            "deadline_s": opts.get("deadline_s", cfg.deadline_s),
            "max_retries": int(opts.get("max_retries", cfg.max_retries)),
            "kernel": opts.get("kernel", cfg.kernel),
            "explain": bool(opts.get("explain", False)),
            # analyses of an in-flight upload see a stable prefix snapshot
            "chunk_count": len(up.chunks),
        }
        job = self.pool.create(trace_id, up.content_hash, params)
        await self.pool.submit(job)
        return Response(status=202, doc={"job_id": job.job_id,
                                         "trace_id": trace_id,
                                         "state": job.state,
                                         "shard": job.shard,
                                         "content_hash": job.content_hash})

    # -- the job executor (runs on a shard thread) ---------------------------

    def _execute_job(self, job: AnalysisJob) -> Tuple[dict, bool]:
        reg = get_registry()
        p = job.params
        key = BuildCache.result_key(
            job.content_hash, mode=p["mode"], workers=p["workers"],
            deadline_s=p["deadline_s"], max_retries=p["max_retries"],
            kernel=p["kernel"], explain=p["explain"])
        cached = self.cache.get_result(key)
        if cached is not None:
            job.cache_hit = True
            return cached, False
        up = self.store.get(job.trace_id)
        chunks = up.chunks[:p["chunk_count"]]    # append-only: safe snapshot
        with job.span("build"):
            salvaged = self.cache.get_graph(job.content_hash, chunks,
                                            label=job.trace_id)
        with job.span("analyze"), reg.phase("serve.analyze"):
            la = analyze_loaded(salvaged.graph, salvaged.view,
                                salvaged.suppression,
                                coverage=salvaged.coverage,
                                mode=p["mode"], workers=p["workers"],
                                explain=p["explain"], kernel=p["kernel"],
                                deadline_s=p["deadline_s"],
                                max_retries=p["max_retries"])
        with job.span("report"):
            doc = {
                "schema": REPORT_SCHEMA,
                "content_hash": job.content_hash,
                "analysis": {
                    "mode": p["mode"],
                    "raw_candidates": la.raw_candidates,
                    "reports": len(la.reports),
                },
                "errors": [report_to_dict(r) for r in la.reports],
                "error_count": len(la.reports),
                "suppress": la.engine.stats_doc(),
                "coverage": salvaged.coverage.to_dict(),
                "graph": salvaged.graph.stats(),
                "record_run": salvaged.stats,
            }
            if la.partial is not None:
                doc["analysis"]["resilience"] = la.partial.to_dict()
        degraded = (not salvaged.coverage.complete
                    or (la.partial is not None and not la.partial.complete))
        if not degraded:
            # degraded results are never cached: the damage may be a
            # transient fault, and the same content hash must be able to
            # analyze clean once the fault clears
            self.cache.put_result(key, doc)
        return doc, degraded
