"""Content-addressed caches for the ingestion server.

Two layers, both keyed off the upload's SHA-256 content hash:

* **graph cache** — assembled :class:`~repro.core.trace.SalvagedTrace`
  objects with their HB indexes prepared.  Re-uploading a trace that is
  already cached skips the whole segment-graph + index build (the
  dominant cost for large traces).
* **result cache** — finished analysis-core documents, keyed by
  ``(content_hash, analysis parameters)``.  Re-analyzing a cached trace
  with the same knobs returns the stored report without touching a
  worker shard's CPU budget.

Every probe books ``serve.cache.graph.{hits,misses,builds,evictions}`` /
``serve.cache.result.{hits,misses}`` so the load bench (and ``/metrics``)
can prove dedup actually happened.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.core.trace import SalvagedTrace, assemble_chunks
from repro.obs.metrics import get_registry


class _LRU:
    """A small thread-safe LRU map (OrderedDict + one lock)."""

    def __init__(self, capacity: int) -> None:
        self.capacity = max(1, capacity)
        self._map: "OrderedDict[object, object]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key):
        with self._lock:
            if key not in self._map:
                return None
            self._map.move_to_end(key)
            return self._map[key]

    def put(self, key, value) -> int:
        """Insert; returns the number of entries evicted (0 or 1)."""
        with self._lock:
            self._map[key] = value
            self._map.move_to_end(key)
            if len(self._map) > self.capacity:
                self._map.popitem(last=False)
                return 1
            return 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._map)


class BuildCache:
    """Graph + result caches the job executors consult."""

    def __init__(self, *, graph_capacity: int = 32,
                 result_capacity: int = 128) -> None:
        self._graphs = _LRU(graph_capacity)
        self._results = _LRU(result_capacity)
        self._build_locks: dict = {}
        self._lock = threading.Lock()
        #: graph builds actually performed (the zero-rebuild test's probe)
        self.graph_builds = 0

    # -- graphs --------------------------------------------------------------

    def get_graph(self, content_hash: str, chunks: List[dict],
                  *, label: str = "<uploaded>") -> SalvagedTrace:
        """Fetch or build the assembled trace for ``content_hash``.

        Concurrent requests for the same hash serialize on a per-hash
        build lock so a popular trace is only ever assembled once.
        """
        reg = get_registry()
        cached = self._graphs.get(content_hash)
        if cached is not None:
            reg.counter("serve.cache.graph.hits").inc()
            return cached
        with self._lock:
            build_lock = self._build_locks.setdefault(content_hash,
                                                      threading.Lock())
        with build_lock:
            cached = self._graphs.get(content_hash)
            if cached is not None:
                reg.counter("serve.cache.graph.hits").inc()
                return cached
            reg.counter("serve.cache.graph.misses").inc()
            with reg.phase("serve.build"):
                salvaged = assemble_chunks(chunks, label=label)
                salvaged.graph.prepare_queries()
            self.graph_builds += 1
            reg.counter("serve.cache.graph.builds").inc()
            evicted = self._graphs.put(content_hash, salvaged)
            if evicted:
                reg.counter("serve.cache.graph.evictions").inc(evicted)
        with self._lock:
            self._build_locks.pop(content_hash, None)
        return salvaged

    # -- results -------------------------------------------------------------

    @staticmethod
    def result_key(content_hash: str, **params) -> Tuple:
        return (content_hash,) + tuple(sorted(params.items()))

    def get_result(self, key: Tuple) -> Optional[dict]:
        reg = get_registry()
        cached = self._results.get(key)
        if cached is not None:
            reg.counter("serve.cache.result.hits").inc()
        else:
            reg.counter("serve.cache.result.misses").inc()
        return cached

    def put_result(self, key: Tuple, doc: dict) -> None:
        self._results.put(key, doc)

    def stats(self) -> dict:
        return {"graphs_cached": len(self._graphs),
                "results_cached": len(self._results),
                "graph_builds": self.graph_builds}
