"""Race-analysis-as-a-service: the trace-ingestion server.

The service spine from ROADMAP item 1: streamed ``taskgrind-trace/2``
chunk uploads with CRC validation at the edge (:mod:`repro.serve.store`),
content-hash-keyed graph/result caches (:mod:`repro.serve.cache`), a
sharded worker pool reusing the supervised analysis's deadline/retry/
quarantine machinery (:mod:`repro.serve.jobs`), and a stdlib-only
HTTP/1.1 JSON API (:mod:`repro.serve.http`, :mod:`repro.serve.app`).

Entry points: ``python -m repro serve`` (CLI), or in-process::

    from repro.serve import ServeConfig, ServerThread, ServeClient
    with ServerThread(ServeConfig(shards=4)) as srv:
        with ServeClient(srv.base_url) as client:
            trace_id, _ = client.upload_trace(lines)
            job_id = client.analyze(trace_id)
            client.wait(job_id)
"""

from repro.serve.app import ServeConfig, TraceService
from repro.serve.client import ServeClient, read_trace_lines
from repro.serve.server import ServerThread, TraceServer
