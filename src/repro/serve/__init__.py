"""Race-analysis-as-a-service: the trace-ingestion server.

The service spine from ROADMAP item 1: streamed ``taskgrind-trace/2``
chunk uploads with CRC validation at the edge (:mod:`repro.serve.store`),
content-hash-keyed graph/result caches (:mod:`repro.serve.cache`), a
sharded worker pool reusing the supervised analysis's deadline/retry/
quarantine machinery (:mod:`repro.serve.jobs`), and a stdlib-only
HTTP/1.1 JSON API (:mod:`repro.serve.http`, :mod:`repro.serve.app`).

Durability (ROADMAP: crash-recoverable service): with ``--state-dir``
every accepted chunk and job transition is journaled write-ahead
(:mod:`repro.serve.wal`, :mod:`repro.serve.durable`) so a restarted
server recovers sealed uploads byte-exactly, resumes partial uploads at
the journaled ``next_seq``, and re-enqueues interrupted jobs exactly
once.  Overload is shed, not absorbed (:mod:`repro.serve.overload`):
bounded queues and a per-endpoint circuit breaker answer typed 429s with
``Retry-After``, which :class:`ServeClient` honors with decorrelated-
jitter backoff.

Entry points: ``python -m repro serve`` (CLI), or in-process::

    from repro.serve import ServeConfig, ServerThread, ServeClient
    with ServerThread(ServeConfig(shards=4)) as srv:
        with ServeClient(srv.base_url) as client:
            trace_id, _ = client.upload_trace(lines)
            job_id = client.analyze(trace_id)
            client.wait(job_id)
"""

from repro.serve.app import ServeConfig, TraceService
from repro.serve.client import ServeClient, error_from_body, read_trace_lines
from repro.serve.durable import ChunkStore, DurableLog, RecoveredState
from repro.serve.overload import (AdmissionControl, CircuitBreaker,
                                  backoff_delays)
from repro.serve.server import ServerThread, TraceServer
from repro.serve.wal import WalRecord, WalWriter, read_wal
