"""Upload state machine: chunked traces arriving over the wire.

One :class:`TraceUpload` per ``POST /v1/traces``; each ``PUT .../chunks/{seq}``
body is validated *at the edge* before it is accepted:

* the envelope must parse as a JSON object with ``seq``/``kind``/``crc``/
  ``payload`` (→ :class:`~repro.errors.TraceFormatError`, 400);
* ``seq`` must equal the next expected sequence number — the
  ``taskgrind-trace/2`` salvage contract only covers a **dense prefix**, so
  gaps, duplicates and post-``end`` uploads are refused outright
  (→ :class:`~repro.errors.UploadSequenceError`, 409);
* the payload CRC-32 must match the envelope's claim, computed over the
  same canonical JSON the writer used
  (→ :class:`~repro.errors.TraceCorruptionError`, 422);
* chunk 0 must be a ``header`` declaring the trace version this reader
  speaks (→ :class:`~repro.errors.TraceVersionError`, 400).

Accepted chunks feed a running SHA-256 over their canonical payload form —
the **content hash** that keys the segment-graph/HB-index cache.  Two
clients uploading the same logical trace (even with different envelope
whitespace or key order) land on the same hash and share one graph build.
"""

from __future__ import annotations

import hashlib
import json
import threading
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.trace import TRACE_VERSION
from repro.errors import (ResourceNotFound, TraceCorruptionError,
                          TraceFormatError, TraceVersionError,
                          UploadSequenceError)
from repro.faults.inject import get_injector
from repro.obs.metrics import get_registry

_FAULTS = get_injector()

#: upload lifecycle states
OPEN = "open"
COMPLETE = "complete"


def _canonical(payload) -> bytes:
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


@dataclass
class TraceUpload:
    """One trace being streamed in, chunk by chunk."""

    trace_id: str
    state: str = OPEN
    next_seq: int = 0
    chunks: List[dict] = field(default_factory=list)
    bytes_received: int = 0
    _hasher: "hashlib._Hash" = field(default_factory=hashlib.sha256)

    @property
    def content_hash(self) -> str:
        """SHA-256 over the canonical payloads accepted so far."""
        return self._hasher.hexdigest()

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "state": self.state,
            "chunks_accepted": len(self.chunks),
            "next_seq": self.next_seq,
            "bytes_received": self.bytes_received,
            "content_hash": self.content_hash,
        }


class TraceStore:
    """All live uploads, behind one lock (handlers run on the event loop,
    but the job executor threads read finished uploads too)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._uploads: Dict[str, TraceUpload] = {}
        self._next_id = 0

    def create(self) -> TraceUpload:
        with self._lock:
            self._next_id += 1
            up = TraceUpload(trace_id=f"t{self._next_id}")
            self._uploads[up.trace_id] = up
        get_registry().counter("serve.traces.created").inc()
        return up

    def get(self, trace_id: str) -> TraceUpload:
        with self._lock:
            up = self._uploads.get(trace_id)
        if up is None:
            raise ResourceNotFound("trace", trace_id)
        return up

    def add_chunk(self, trace_id: str, url_seq: int, body: bytes) -> dict:
        """Validate + accept one uploaded chunk; returns the ack doc.

        Raises the :mod:`repro.errors` taxonomy on any defect; a rejected
        chunk contributes nothing to the upload's state or content hash,
        so the client can retry the same ``seq`` after a transient fault.
        """
        up = self.get(trace_id)
        reg = get_registry()
        body = _FAULTS.on_upload_chunk(url_seq, body)
        if up.state == COMPLETE:
            raise UploadSequenceError(
                trace_id, expected_seq=None, got_seq=url_seq,
                reason="trace already complete (end chunk accepted)")
        try:
            doc = json.loads(body)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                trace_id, f"undecodable chunk line: {exc.msg}") from exc
        if not isinstance(doc, dict):
            raise TraceFormatError(trace_id, "chunk line is not a JSON object")
        if any(doc.get(k) is None for k in ("seq", "kind", "crc", "payload")):
            raise TraceFormatError(
                trace_id, "chunk envelope missing seq/kind/crc/payload")
        if doc["seq"] != url_seq:
            raise UploadSequenceError(
                trace_id, expected_seq=up.next_seq, got_seq=url_seq,
                reason=f"URL seq {url_seq} != envelope seq {doc['seq']}")
        if url_seq != up.next_seq:
            why = ("duplicate chunk" if url_seq < up.next_seq
                   else "out-of-order chunk (dense prefix required)")
            raise UploadSequenceError(trace_id, expected_seq=up.next_seq,
                                      got_seq=url_seq, reason=why)
        canon = _canonical(doc["payload"])
        computed = zlib.crc32(canon) & 0xFFFFFFFF
        if computed != doc["crc"]:
            reg.counter("serve.ingest.crc_rejects").inc()
            raise TraceCorruptionError(
                trace_id, byte_offset=up.bytes_received, chunk_seq=url_seq,
                reason=f"checksum mismatch (stored {doc['crc']}, "
                       f"computed {computed})")
        if url_seq == 0:
            if doc["kind"] != "header":
                raise TraceFormatError(
                    trace_id, f"chunk 0 must be a header, got "
                              f"{doc['kind']!r}")
            # the version rides on the header *envelope* (writer extras)
            if doc.get("version") != TRACE_VERSION:
                raise TraceVersionError(trace_id, doc.get("version"),
                                        f"version {TRACE_VERSION}")
        with self._lock:
            # revalidate under the lock: two in-flight uploads of the same
            # seq must resolve to exactly one accept
            if up.state == COMPLETE or url_seq != up.next_seq:
                raise UploadSequenceError(
                    trace_id, expected_seq=up.next_seq, got_seq=url_seq,
                    reason="lost the accept race for this seq")
            up.chunks.append(doc)
            up.next_seq += 1
            up.bytes_received += len(body)
            up._hasher.update(f"{url_seq}|{doc['kind']}|".encode())
            up._hasher.update(canon)
            if doc["kind"] == "end":
                up.state = COMPLETE
        reg.counter("serve.ingest.chunks").inc()
        reg.counter("serve.ingest.bytes").inc(len(body))
        return {"trace_id": trace_id, "seq": url_seq, "accepted": True,
                "state": up.state, "next_seq": up.next_seq,
                "content_hash": up.content_hash}
