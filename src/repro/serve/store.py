"""Upload state machine: chunked traces arriving over the wire.

One :class:`TraceUpload` per ``POST /v1/traces``; each ``PUT .../chunks/{seq}``
body is validated *at the edge* before it is accepted:

* the envelope must parse as a JSON object with ``seq``/``kind``/``crc``/
  ``payload`` (→ :class:`~repro.errors.TraceFormatError`, 400);
* ``seq`` must equal the next expected sequence number — the
  ``taskgrind-trace/2`` salvage contract only covers a **dense prefix**, so
  gaps and post-``end`` uploads are refused outright
  (→ :class:`~repro.errors.UploadSequenceError`, 409).  A **re-PUT of an
  already-accepted seq with the identical CRC** is a 200 no-op instead —
  a client that crashed after the server accepted but before the ack
  arrived resumes by resending, and idempotence makes that safe; only a
  *different* body under an old seq is a 409 conflict;
* the payload CRC-32 must match the envelope's claim, computed over the
  same canonical JSON the writer used
  (→ :class:`~repro.errors.TraceCorruptionError`, 422);
* chunk 0 must be a ``header`` declaring the trace version this reader
  speaks (→ :class:`~repro.errors.TraceVersionError`, 400).

Accepted chunks feed a running SHA-256 over their canonical payload form —
the **content hash** that keys the segment-graph/HB-index cache.  Two
clients uploading the same logical trace (even with different envelope
whitespace or key order) land on the same hash and share one graph build.

When the service runs with ``--state-dir``, every accept is journaled
into the :class:`~repro.serve.durable.DurableLog` **before** the
in-memory commit (chunk body to the content-addressed store, then the
``chunk-accepted`` record), so :meth:`TraceStore.restore` can rebuild
uploads after a crash: sealed uploads reappear complete, partial uploads
resume at the exact journaled ``next_seq``.
"""

from __future__ import annotations

import hashlib
import json
import threading
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.trace import TRACE_VERSION
from repro.errors import (ResourceNotFound, TraceCorruptionError,
                          TraceFormatError, TraceVersionError,
                          UploadSequenceError)
from repro.faults.inject import get_injector
from repro.obs.metrics import get_registry

_FAULTS = get_injector()

#: upload lifecycle states
OPEN = "open"
COMPLETE = "complete"


def _canonical(payload) -> bytes:
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


@dataclass
class TraceUpload:
    """One trace being streamed in, chunk by chunk."""

    trace_id: str
    state: str = OPEN
    next_seq: int = 0
    chunks: List[dict] = field(default_factory=list)
    bytes_received: int = 0
    #: True when this upload was rebuilt from the journal after a restart
    recovered: bool = False
    _hasher: "hashlib._Hash" = field(default_factory=hashlib.sha256)

    @property
    def content_hash(self) -> str:
        """SHA-256 over the canonical payloads accepted so far."""
        return self._hasher.hexdigest()

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "state": self.state,
            "chunks_accepted": len(self.chunks),
            "next_seq": self.next_seq,
            "bytes_received": self.bytes_received,
            "content_hash": self.content_hash,
            "recovered": self.recovered,
        }


class TraceStore:
    """All live uploads, behind one lock (handlers run on the event loop,
    but the job executor threads read finished uploads too)."""

    def __init__(self, durable=None) -> None:
        self._lock = threading.Lock()
        self._uploads: Dict[str, TraceUpload] = {}
        self._next_id = 0
        self._durable = durable

    def create(self) -> TraceUpload:
        with self._lock:
            self._next_id += 1
            up = TraceUpload(trace_id=f"t{self._next_id}")
            if self._durable is not None:
                # write-ahead: the id is journaled before the client can
                # ever see it, so a recovered server never re-issues it
                self._durable.upload_created(up.trace_id)
            self._uploads[up.trace_id] = up
        get_registry().counter("serve.traces.created").inc()
        return up

    def get(self, trace_id: str) -> TraceUpload:
        with self._lock:
            up = self._uploads.get(trace_id)
        if up is None:
            raise ResourceNotFound("trace", trace_id)
        return up

    def open_bytes(self) -> int:
        """Bytes held by in-flight (non-complete) uploads — the admission
        controller's measure of ingest memory pressure."""
        with self._lock:
            return sum(u.bytes_received for u in self._uploads.values()
                       if u.state == OPEN)

    def add_chunk(self, trace_id: str, url_seq: int, body: bytes) -> dict:
        """Validate + accept one uploaded chunk; returns the ack doc.

        Raises the :mod:`repro.errors` taxonomy on any defect; a rejected
        chunk contributes nothing to the upload's state or content hash,
        so the client can retry the same ``seq`` after a transient fault.
        """
        up = self.get(trace_id)
        reg = get_registry()
        body = _FAULTS.on_upload_chunk(url_seq, body)
        try:
            doc = json.loads(body)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                trace_id, f"undecodable chunk line: {exc.msg}") from exc
        if not isinstance(doc, dict):
            raise TraceFormatError(trace_id, "chunk line is not a JSON object")
        if any(doc.get(k) is None for k in ("seq", "kind", "crc", "payload")):
            raise TraceFormatError(
                trace_id, "chunk envelope missing seq/kind/crc/payload")
        if doc["seq"] != url_seq:
            raise UploadSequenceError(
                trace_id, expected_seq=up.next_seq, got_seq=url_seq,
                reason=f"URL seq {url_seq} != envelope seq {doc['seq']}")
        if url_seq < up.next_seq:
            # idempotent re-PUT: a resuming client may resend a chunk whose
            # ack it never saw.  Identical CRC → the accepted state already
            # contains this exact chunk, so acknowledge it again (no-op);
            # a different CRC is a genuine conflict.
            if up.chunks[url_seq]["crc"] == doc["crc"]:
                reg.counter("serve.ingest.duplicate_acks").inc()
                return {"trace_id": trace_id, "seq": url_seq,
                        "accepted": True, "duplicate": True,
                        "state": up.state, "next_seq": up.next_seq,
                        "content_hash": up.content_hash}
            raise UploadSequenceError(
                trace_id, expected_seq=up.next_seq, got_seq=url_seq,
                reason="duplicate seq with different content "
                       f"(accepted crc {up.chunks[url_seq]['crc']}, "
                       f"re-PUT crc {doc['crc']})")
        if up.state == COMPLETE:
            raise UploadSequenceError(
                trace_id, expected_seq=None, got_seq=url_seq,
                reason="trace already complete (end chunk accepted)")
        if url_seq != up.next_seq:
            raise UploadSequenceError(
                trace_id, expected_seq=up.next_seq, got_seq=url_seq,
                reason="out-of-order chunk (dense prefix required)")
        canon = _canonical(doc["payload"])
        computed = zlib.crc32(canon) & 0xFFFFFFFF
        if computed != doc["crc"]:
            reg.counter("serve.ingest.crc_rejects").inc()
            raise TraceCorruptionError(
                trace_id, byte_offset=up.bytes_received, chunk_seq=url_seq,
                reason=f"checksum mismatch (stored {doc['crc']}, "
                       f"computed {computed})")
        if url_seq == 0:
            if doc["kind"] != "header":
                raise TraceFormatError(
                    trace_id, f"chunk 0 must be a header, got "
                              f"{doc['kind']!r}")
            # the version rides on the header *envelope* (writer extras)
            if doc.get("version") != TRACE_VERSION:
                raise TraceVersionError(trace_id, doc.get("version"),
                                        f"version {TRACE_VERSION}")
        with self._lock:
            # revalidate under the lock: two in-flight uploads of the same
            # seq must resolve to exactly one accept
            if up.state == COMPLETE or url_seq != up.next_seq:
                raise UploadSequenceError(
                    trace_id, expected_seq=up.next_seq, got_seq=url_seq,
                    reason="lost the accept race for this seq")
            if self._durable is not None:
                # write-ahead: body into the chunk store + journal record
                # BEFORE the in-memory commit.  A crash between the two
                # leaves a journaled chunk the memory never saw — recovery
                # replays it, the resuming client gets a duplicate ack.
                self._durable.chunk_accepted(trace_id, url_seq, doc)
            up.chunks.append(doc)
            up.next_seq += 1
            up.bytes_received += len(body)
            up._hasher.update(f"{url_seq}|{doc['kind']}|".encode())
            up._hasher.update(canon)
            if doc["kind"] == "end":
                up.state = COMPLETE
                if self._durable is not None:
                    self._durable.upload_sealed(trace_id, up.content_hash,
                                                len(up.chunks))
        reg.counter("serve.ingest.chunks").inc()
        reg.counter("serve.ingest.bytes").inc(len(body))
        return {"trace_id": trace_id, "seq": url_seq, "accepted": True,
                "state": up.state, "next_seq": up.next_seq,
                "content_hash": up.content_hash}

    # -- crash recovery ------------------------------------------------------

    def restore(self, recovered) -> None:
        """Rebuild uploads from a :class:`~repro.serve.durable.RecoveredState`.

        Each recovered upload's chunks are re-fed through the same
        SHA-256 discipline as live accepts, so the content hash — and
        therefore cache keys and report bytes — is identical across the
        restart.  A seal record's claimed hash is cross-checked; on
        mismatch the upload is left OPEN (the client must finish or
        re-upload it) rather than serving analysis of dubious bytes.
        """
        reg = get_registry()
        with self._lock:
            for rec in recovered.uploads.values():
                up = TraceUpload(trace_id=rec.trace_id, recovered=True)
                for seq, doc in enumerate(rec.chunks):
                    canon = _canonical(doc["payload"])
                    up.chunks.append(doc)
                    up.next_seq += 1
                    up.bytes_received += len(canon)
                    up._hasher.update(f"{seq}|{doc['kind']}|".encode())
                    up._hasher.update(canon)
                ends = bool(rec.chunks) and rec.chunks[-1]["kind"] == "end"
                if rec.sealed and rec.content_hash is not None \
                        and rec.content_hash != up.content_hash:
                    reg.counter("serve.recovery.hash_mismatches").inc()
                elif rec.sealed or ends:
                    up.state = COMPLETE
                self._uploads[up.trace_id] = up
            self._next_id = max(self._next_id, recovered.max_trace_num)
