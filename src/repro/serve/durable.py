"""Durable serve state: content-addressed chunk store + WAL recovery.

The division of labor mirrors Ronsse & De Bosschere's record/replay
insight: the journal (:mod:`repro.serve.wal`) durably records only the
cheap *ordering* events — upload created, chunk accepted, upload sealed,
job enqueued, job terminal — while everything bulky (chunk bodies, result
documents) lives in a content-addressed blob store and is referenced by
digest.  Restart recovery replays the journal and reconstructs the entire
serve state machine from those two ingredients.

Recovery contract (the PR 5 salvage guarantee, lifted to the service):
recovered state is a **prefix** of the crashed server's state — it may
*lose* the most recent work (the torn trailing record, an un-fsynced
tail) but it never *invents* work:

* a sealed upload whose ``upload-sealed`` record survived is recovered
  byte-exactly (every chunk body re-fetched by digest, content hash
  re-derived and cross-checked);
* a partial upload resumes at exactly the next journaled ``seq`` — the
  client reads it from ``GET /v1/traces/{id}`` and continues instead of
  re-uploading;
* a job with a ``job-terminal`` record keeps its byte-identical result
  document; a job enqueued but not terminal is re-enqueued **exactly
  once** (duplicate ``job-enqueued`` records — possible when a crash
  lands between journal append and queue push on a retried request — are
  idempotently collapsed by job id);
* a trailing ``clean-shutdown`` record marks a graceful drain; its
  absence marks a crash (``serve.recovery.crash`` vs ``.clean``).

On open, the journal is **compacted**: recovered live state is rewritten
as a fresh journal (atomic tmp+rename), so torn tails never accumulate
and journal length stays proportional to live state, not history.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import StateDirError
from repro.obs.metrics import get_registry
from repro.serve.wal import WalRecord, WalWriter, read_wal

WAL_NAME = "wal.jsonl"
CHUNKS_DIR = "chunks"


def _canonical(doc) -> bytes:
    return json.dumps(doc, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


class ChunkStore:
    """Content-addressed blobs: ``chunks/<aa>/<sha256-hex>``.

    Bodies are written atomically (tmp + rename into the prefix dir) and
    fsynced before the journal record that references them — a digest in
    the journal therefore always resolves after a crash.  Identical
    bodies dedupe for free: a million uploads of the same trace cost one
    copy of each chunk.
    """

    def __init__(self, root: str, *, fsync: bool = True) -> None:
        self.root = root
        self._fsync = fsync
        os.makedirs(root, exist_ok=True)

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, digest[:2], digest)

    @staticmethod
    def digest_of(body: bytes) -> str:
        return hashlib.sha256(body).hexdigest()

    def has(self, digest: str) -> bool:
        return os.path.exists(self._path(digest))

    def put(self, body: bytes) -> str:
        """Store ``body``; returns its digest.  Idempotent."""
        digest = self.digest_of(body)
        path = self._path(digest)
        if os.path.exists(path):
            get_registry().counter("serve.chunkstore.dedup_hits").inc()
            return digest
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(body)
                fh.flush()
                if self._fsync:
                    os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        get_registry().counter("serve.chunkstore.writes").inc()
        get_registry().counter("serve.chunkstore.bytes").inc(len(body))
        return digest

    def get(self, digest: str) -> Optional[bytes]:
        """The stored body, re-verified against its digest (None = lost)."""
        try:
            with open(self._path(digest), "rb") as fh:
                body = fh.read()
        except OSError:
            return None
        if self.digest_of(body) != digest:
            return None         # bit rot: treat as lost, never mis-serve
        return body


# ---------------------------------------------------------------------------
# recovered state
# ---------------------------------------------------------------------------

@dataclass
class RecoveredUpload:
    trace_id: str
    #: parsed chunk envelope docs, dense accepted order
    chunks: List[dict] = field(default_factory=list)
    #: raw body byte counts (rebuilds ``bytes_received``)
    body_bytes: int = 0
    sealed: bool = False
    #: content hash claimed by the seal record (cross-checked on restore)
    content_hash: Optional[str] = None
    #: True when a referenced chunk body was lost: the upload is frozen at
    #: its recovered prefix and later chunk-accepted records are ignored
    truncated: bool = False


@dataclass
class RecoveredJob:
    job_id: str
    trace_id: str
    content_hash: str
    params: dict
    #: terminal state, or None → re-enqueue exactly once
    state: Optional[str] = None
    result: Optional[dict] = None
    error: Optional[dict] = None


@dataclass
class RecoveredState:
    uploads: Dict[str, RecoveredUpload] = field(default_factory=dict)
    jobs: Dict[str, RecoveredJob] = field(default_factory=dict)
    clean: bool = False
    dropped_records: int = 0
    errors: List[str] = field(default_factory=list)
    max_trace_num: int = 0
    max_job_num: int = 0

    @property
    def requeue_jobs(self) -> List[RecoveredJob]:
        """Jobs that were queued/running at death, in enqueue order."""
        return [j for j in self.jobs.values() if j.state is None]


def _id_num(resource_id: str) -> int:
    try:
        return int(resource_id[1:])
    except (ValueError, IndexError):
        return 0


def replay_wal(records: List[WalRecord], store: ChunkStore
               ) -> RecoveredState:
    """Fold a validated record prefix into recovered serve state."""
    st = RecoveredState()
    for rec in records:
        p = rec.payload
        if rec.kind == "header":
            continue
        if rec.kind == "upload-created":
            tid = p["trace_id"]
            st.uploads.setdefault(tid, RecoveredUpload(trace_id=tid))
            st.max_trace_num = max(st.max_trace_num, _id_num(tid))
        elif rec.kind == "chunk-accepted":
            up = st.uploads.get(p["trace_id"])
            if up is None or up.truncated or up.sealed:
                continue
            if p["seq"] != len(up.chunks):
                # duplicate record from a crash between journal append and
                # the in-memory commit: idempotently skip
                continue
            body = store.get(p["digest"])
            if body is None:
                up.truncated = True
                st.errors.append(
                    f"{p['trace_id']}: chunk {p['seq']} body "
                    f"{p['digest'][:12]}… lost; upload frozen at "
                    f"seq {len(up.chunks)}")
                continue
            try:
                doc = json.loads(body)
            except json.JSONDecodeError:
                up.truncated = True
                continue
            up.chunks.append(doc)
            up.body_bytes += len(body)
        elif rec.kind == "upload-sealed":
            up = st.uploads.get(p["trace_id"])
            if up is None or up.truncated:
                continue
            if p.get("chunks") is not None \
                    and p["chunks"] != len(up.chunks):
                st.errors.append(
                    f"{p['trace_id']}: seal record claims {p['chunks']} "
                    f"chunks, {len(up.chunks)} recovered; not sealed")
                up.truncated = True
                continue
            up.sealed = True
            up.content_hash = p.get("content_hash")
        elif rec.kind == "job-enqueued":
            jid = p["job_id"]
            if jid in st.jobs:
                continue        # exactly-once: collapse duplicates
            st.jobs[jid] = RecoveredJob(
                job_id=jid, trace_id=p["trace_id"],
                content_hash=p["content_hash"],
                params=dict(p.get("params", {})))
            st.max_job_num = max(st.max_job_num, _id_num(jid))
        elif rec.kind == "job-terminal":
            job = st.jobs.get(p["job_id"])
            if job is None or job.state is not None:
                continue
            result = None
            digest = p.get("result_digest")
            if digest is not None:
                body = store.get(digest)
                if body is not None:
                    try:
                        result = json.loads(body)
                    except json.JSONDecodeError:
                        result = None
            if p["state"] in ("done", "degraded") and result is None:
                # terminal record without its result blob: the job reruns
                st.errors.append(
                    f"{p['job_id']}: terminal result blob lost; "
                    "job will re-execute")
                continue
            job.state = p["state"]
            job.result = result
            job.error = p.get("error")
        elif rec.kind == "clean-shutdown":
            pass                # read_wal already booked it in info
    return st


# ---------------------------------------------------------------------------
# the durable log facade (what store.py / jobs.py / app.py journal into)
# ---------------------------------------------------------------------------

class DurableLog:
    """Owns one ``--state-dir``: journal + chunk store + recovery.

    Construction performs recovery: the existing journal (if any) is
    salvage-read, replayed into :class:`RecoveredState`, compacted into a
    fresh journal, and the writer is left open for appends.  Any
    structural failure — unwritable directory, foreign journal schema —
    raises :class:`~repro.errors.StateDirError`; a durable server must
    refuse to start rather than silently run in-memory.
    """

    def __init__(self, state_dir: str, *, fsync_policy: str = "always",
                 fsync_interval: int = 16) -> None:
        self.state_dir = state_dir
        self._policy = fsync_policy
        reg = get_registry()
        try:
            os.makedirs(state_dir, exist_ok=True)
            probe = os.path.join(state_dir, ".writable-probe")
            with open(probe, "w") as fh:
                fh.write("ok")
            os.unlink(probe)
        except OSError as exc:
            raise StateDirError(state_dir, f"not writable: {exc}") from exc
        self.chunks = ChunkStore(os.path.join(state_dir, CHUNKS_DIR),
                                 fsync=fsync_policy != "never")
        wal_path = os.path.join(state_dir, WAL_NAME)
        self.recovered = RecoveredState()
        if os.path.exists(wal_path):
            with reg.phase("serve.recovery"):
                records, info = read_wal(wal_path)
                self.recovered = replay_wal(records, self.chunks)
                self.recovered.clean = info["clean"]
                self.recovered.dropped_records = info["dropped"]
                self.recovered.errors.extend(info["errors"])
            reg.counter("serve.recovery.clean" if info["clean"]
                        else "serve.recovery.crash").inc()
            reg.counter("serve.recovery.uploads").inc(
                len(self.recovered.uploads))
            reg.counter("serve.recovery.sealed").inc(
                sum(1 for u in self.recovered.uploads.values() if u.sealed))
            reg.counter("serve.recovery.chunks").inc(
                sum(len(u.chunks) for u in self.recovered.uploads.values()))
            reg.counter("serve.recovery.jobs_terminal").inc(
                sum(1 for j in self.recovered.jobs.values()
                    if j.state is not None))
            reg.counter("serve.recovery.jobs_requeued").inc(
                len(self.recovered.requeue_jobs))
            reg.counter("serve.recovery.torn_records_dropped").inc(
                self.recovered.dropped_records)
        self._writer = self._compact(wal_path, self.recovered)

    # -- compaction ----------------------------------------------------------

    def _compact(self, wal_path: str, st: RecoveredState) -> WalWriter:
        """Rewrite live state as a fresh journal; atomic swap; open it."""
        tmp = wal_path + ".tmp"
        fh = open(tmp, "wb")
        writer = WalWriter(fh, fsync_policy=self._policy)
        try:
            for up in st.uploads.values():
                writer.append("upload-created", {"trace_id": up.trace_id})
                for seq, doc in enumerate(up.chunks):
                    body = _canonical(doc)  # may differ from wire bytes —
                    # the envelope doc IS the state; digest over canon form
                    digest = self.chunks.put(body)
                    writer.append("chunk-accepted", {
                        "trace_id": up.trace_id, "seq": seq,
                        "kind": doc.get("kind"), "digest": digest})
                if up.sealed:
                    writer.append("upload-sealed", {
                        "trace_id": up.trace_id,
                        "content_hash": up.content_hash,
                        "chunks": len(up.chunks)})
            for job in st.jobs.values():
                writer.append("job-enqueued", {
                    "job_id": job.job_id, "trace_id": job.trace_id,
                    "content_hash": job.content_hash,
                    "params": job.params})
                if job.state is not None:
                    terminal: dict = {"job_id": job.job_id,
                                      "state": job.state}
                    if job.result is not None:
                        terminal["result_digest"] = self.chunks.put(
                            _canonical(job.result))
                    if job.error is not None:
                        terminal["error"] = job.error
                    writer.append("job-terminal", terminal)
            writer.sync()
            os.replace(tmp, wal_path)
        except StateDirError:
            raise
        except OSError as exc:
            raise StateDirError(self.state_dir,
                                f"journal compaction failed: {exc}") from exc
        return writer

    # -- journaling API (write-ahead: call BEFORE committing state) ----------

    def upload_created(self, trace_id: str) -> None:
        self._writer.append("upload-created", {"trace_id": trace_id})

    def chunk_accepted(self, trace_id: str, seq: int,
                       envelope: dict) -> None:
        """Durably store the chunk body, then journal its acceptance."""
        digest = self.chunks.put(_canonical(envelope))
        self._writer.append("chunk-accepted", {
            "trace_id": trace_id, "seq": seq,
            "kind": envelope.get("kind"), "digest": digest})

    def upload_sealed(self, trace_id: str, content_hash: str,
                      chunks: int) -> None:
        self._writer.append("upload-sealed", {
            "trace_id": trace_id, "content_hash": content_hash,
            "chunks": chunks})

    def job_enqueued(self, job_id: str, trace_id: str, content_hash: str,
                     params: dict) -> None:
        self._writer.append("job-enqueued", {
            "job_id": job_id, "trace_id": trace_id,
            "content_hash": content_hash, "params": params})

    def job_terminal(self, job_id: str, state: str, *,
                     result: Optional[dict] = None,
                     error: Optional[dict] = None) -> None:
        doc: dict = {"job_id": job_id, "state": state}
        if result is not None:
            doc["result_digest"] = self.chunks.put(_canonical(result))
        if error is not None:
            doc["error"] = error
        self._writer.append("job-terminal", doc)

    def clean_shutdown(self) -> None:
        self._writer.append("clean-shutdown", {})
        self._writer.sync()

    # -- lifecycle -----------------------------------------------------------

    @property
    def frozen(self) -> bool:
        return self._writer.frozen

    def freeze(self) -> None:
        """SIGKILL simulation: nothing journals after this."""
        self._writer.freeze()

    def close(self) -> None:
        self._writer.close()
