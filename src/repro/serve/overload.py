"""Overload protection: admission control + per-endpoint circuit breaker.

A heavyweight-analysis service fails differently from a stateless API:
jobs hold gigabyte graphs for minutes, so an unbounded queue does not
*delay* overload, it *converts* it into an OOM kill that loses every
queued job at once.  The serve layer therefore sheds load at the edge:

* **admission control** — bounded job-queue depth and bounded in-flight
  upload bytes.  A request past either limit gets a typed
  :class:`~repro.errors.ServeOverloadError` → HTTP 429 with a
  ``Retry-After`` header, never a silent drop or an unbounded enqueue;
* **circuit breaker** — per endpoint, opened by a run of consecutive
  5xx responses.  While open, requests are refused instantly (429 with
  the remaining cooldown as ``Retry-After``); after the cooldown one
  *probe* request is admitted (half-open) and its outcome decides
  whether the breaker closes or re-opens.  This keeps a crashing
  executor from burning every client's retry budget on requests that
  cannot succeed.

Every shed is booked under ``serve.shed.*`` so the load bench can prove
overload turned into orderly 429s rather than timeouts.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.errors import ServeOverloadError
from repro.obs.metrics import get_registry


class AdmissionControl:
    """Edge limits; raises :class:`ServeOverloadError` past capacity."""

    def __init__(self, *, max_queue_depth: int = 256,
                 max_upload_bytes: int = 256 * 1024 * 1024,
                 retry_after_s: float = 0.25) -> None:
        self.max_queue_depth = max_queue_depth
        self.max_upload_bytes = max_upload_bytes
        self.retry_after_s = retry_after_s

    def admit_job(self, active_jobs: int) -> None:
        if active_jobs >= self.max_queue_depth:
            get_registry().counter("serve.shed.jobs").inc()
            raise ServeOverloadError(
                "job-queue", retry_after_s=self.retry_after_s,
                limit=self.max_queue_depth, current=active_jobs)

    def admit_upload(self, open_bytes: int, body_len: int) -> None:
        if open_bytes + body_len > self.max_upload_bytes:
            get_registry().counter("serve.shed.uploads").inc()
            raise ServeOverloadError(
                "upload-bytes", retry_after_s=self.retry_after_s,
                limit=self.max_upload_bytes,
                current=open_bytes + body_len)


class CircuitBreaker:
    """Consecutive-5xx breaker, one independent circuit per endpoint.

    States: *closed* (normal), *open* (refusing, cooldown running),
    *half-open* (cooldown elapsed; exactly one probe in flight).  The
    classic Nygard shape, kept deliberately small: consecutive failures
    rather than a rate window, because the serve endpoints are few and a
    run of 5xx on one of them means a deterministic defect (a poisoned
    cache entry, a broken executor), not statistical noise.
    """

    def __init__(self, *, threshold: int = 5, cooldown_s: float = 1.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.threshold = max(1, threshold)
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        #: endpoint -> {failures, opened_at, probing}
        self._state: Dict[str, dict] = {}

    def _circuit(self, endpoint: str) -> dict:
        return self._state.setdefault(
            endpoint, {"failures": 0, "opened_at": None, "probing": False})

    def check(self, endpoint: str) -> None:
        """Admission gate; raises while the endpoint's circuit is open."""
        with self._lock:
            c = self._circuit(endpoint)
            if c["opened_at"] is None:
                return
            remaining = self.cooldown_s - (self._clock() - c["opened_at"])
            if remaining > 0:
                get_registry().counter("serve.shed.breaker").inc()
                raise ServeOverloadError(
                    f"breaker:{endpoint}",
                    retry_after_s=max(0.001, remaining),
                    limit=self.threshold, current=c["failures"])
            if c["probing"]:
                # one probe at a time; everyone else keeps backing off
                get_registry().counter("serve.shed.breaker").inc()
                raise ServeOverloadError(
                    f"breaker:{endpoint}", retry_after_s=self.cooldown_s,
                    limit=self.threshold, current=c["failures"])
            c["probing"] = True         # half-open: admit this one request

    def record(self, endpoint: str, status: int) -> None:
        """Feed back a response status for breaker bookkeeping."""
        if status == 429:
            return          # sheds are not endpoint failures
        with self._lock:
            c = self._circuit(endpoint)
            if status < 500:
                if c["opened_at"] is not None:
                    get_registry().counter("serve.breaker.closed").inc()
                c.update(failures=0, opened_at=None, probing=False)
                return
            c["failures"] += 1
            if c["probing"] or c["failures"] >= self.threshold:
                # a failed probe re-opens with a fresh cooldown
                if c["opened_at"] is None or c["probing"]:
                    get_registry().counter("serve.breaker.opened").inc()
                c["opened_at"] = self._clock()
                c["probing"] = False

    def state_of(self, endpoint: str) -> str:
        """``closed`` / ``open`` / ``half-open`` (introspection + tests)."""
        with self._lock:
            c = self._circuit(endpoint)
            if c["opened_at"] is None:
                return "closed"
            if self._clock() - c["opened_at"] >= self.cooldown_s:
                return "half-open"
            return "open"


def backoff_delays(*, base_s: float = 0.05, cap_s: float = 2.0,
                   attempts: int = 6,
                   rand: Optional[Callable[[float, float], float]] = None):
    """Decorrelated-jitter delays (AWS architecture-blog recipe).

    Each delay is ``min(cap, uniform(base, prev * 3))`` — the sequence
    grows roughly exponentially but two clients that failed together do
    not retry together, which is the whole point under overload.
    """
    if rand is None:
        import random
        rand = random.uniform
    prev = base_s
    for _ in range(attempts):
        prev = min(cap_s, rand(base_s, prev * 3))
        yield prev
