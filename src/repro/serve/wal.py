"""The serve layer's write-ahead journal: ``taskgrind-serve-wal/1``.

Heavyweight analysis jobs outlive most process lifetimes (the paper's
100-1000x slowdowns make a crash *during* an upload the common case at
service scale), so every state transition the server would mind losing is
journaled here **before** the in-memory state machine commits it:

====================  =====================================================
record kind           payload
====================  =====================================================
``header``            ``{schema, version}`` — always record 0
``upload-created``    ``{trace_id}``
``chunk-accepted``    ``{trace_id, seq, kind, digest}`` — the chunk body
                      lives in the content-addressed chunk store under
                      ``digest`` and is made durable *before* this record
``upload-sealed``     ``{trace_id, content_hash, chunks}``
``job-enqueued``      ``{job_id, trace_id, content_hash, params}``
``job-terminal``      ``{job_id, state, result_digest | error}``
``clean-shutdown``    ``{}`` — a graceful drain's last word; recovery uses
                      its presence to distinguish clean restarts from
                      crashes
====================  =====================================================

Framing is exactly the ``taskgrind-trace/2`` chunk discipline
(:class:`repro.core.trace._ChunkWriter`): one JSON object per line with
``{seq, kind, crc, payload}``, CRC-32 over the canonical payload, dense
``seq``.  The reader therefore inherits the salvage contract the rest of
the repo already proves — **a recovered journal is a prefix**: a torn
trailing record (the half-line a dying writer leaves behind) is dropped,
and nothing after the first damaged line is trusted.  Recovered state may
lose work, it must never invent work.

Durability is governed by one knob, ``fsync_policy``:

* ``always`` — ``fsync`` after every record (default; a crash loses at
  most the record being written);
* ``interval`` — ``fsync`` every ``fsync_interval`` records (bounded
  loss, much cheaper on spinning media);
* ``never`` — flush to the OS only (survives process death, not power
  loss — the mode the unit tests run in).
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import IO, List, Optional, Tuple

from repro.core.trace import _payload_crc
from repro.errors import StateDirError
from repro.faults.inject import get_injector
from repro.obs.metrics import get_registry

WAL_SCHEMA = "taskgrind-serve-wal/1"
WAL_VERSION = 1

FSYNC_POLICIES = ("always", "interval", "never")

_FAULTS = get_injector()


@dataclass
class WalRecord:
    """One validated journal record."""

    seq: int
    kind: str
    payload: dict


class WalWriter:
    """Appends CRC-framed records to an open journal stream.

    Thread-safe: upload handlers journal from the event loop while job
    executors journal terminal states from shard threads.  ``freeze()``
    models SIGKILL — after it, every append is a silent no-op, exactly
    like a dead process (the chaos bench uses it to kill a server without
    letting in-flight work sneak a last record in).
    """

    def __init__(self, fh: IO[bytes], *, fsync_policy: str = "always",
                 fsync_interval: int = 16, start_seq: int = 0) -> None:
        if fsync_policy not in FSYNC_POLICIES:
            raise ValueError(f"unknown fsync policy {fsync_policy!r} "
                             f"(choose from {FSYNC_POLICIES})")
        self._fh = fh
        self._seq = start_seq
        self._lock = threading.Lock()
        self._policy = fsync_policy
        self._interval = max(1, fsync_interval)
        self._unsynced = 0
        self.frozen = False
        if start_seq == 0:
            self.append("header", {"schema": WAL_SCHEMA,
                                   "version": WAL_VERSION})

    @property
    def records(self) -> int:
        return self._seq

    def freeze(self) -> None:
        """Simulate process death: all further appends are dropped."""
        with self._lock:
            self.frozen = True

    def append(self, kind: str, payload: dict) -> None:
        """Journal one record (write-ahead: call BEFORE committing state)."""
        with self._lock:
            if self.frozen:
                return
            doc = {"seq": self._seq, "kind": kind,
                   "crc": _payload_crc(payload), "payload": payload}
            line = json.dumps(doc, sort_keys=True,
                              separators=(",", ":")).encode("utf-8")
            try:
                line = _FAULTS.on_wal_record(self._seq, line)
            except Exception:
                # injected server death: nothing may journal after this
                self.frozen = True
                raise
            reg = get_registry()
            if line is None:
                # injected torn write: the half-line a dying writer leaves
                self._fh.write(b'{"seq": %d, "kind": "torn' % self._seq)
                self._fh.flush()
                self.frozen = True
                reg.counter("serve.wal.torn_writes").inc()
                return
            self._fh.write(line + b"\n")
            self._fh.flush()
            self._unsynced += 1
            if self._policy == "always" or (
                    self._policy == "interval"
                    and self._unsynced >= self._interval):
                os.fsync(self._fh.fileno())
                self._unsynced = 0
                reg.counter("serve.wal.fsyncs").inc()
            self._seq += 1
            reg.counter("serve.wal.records").inc()
            reg.counter("serve.wal.bytes").inc(len(line) + 1)

    def sync(self) -> None:
        """Force any interval-buffered records to disk."""
        with self._lock:
            if self.frozen or self._policy == "never":
                return
            if self._unsynced:
                os.fsync(self._fh.fileno())
                self._unsynced = 0
                get_registry().counter("serve.wal.fsyncs").inc()

    def close(self) -> None:
        with self._lock:
            if not self.frozen and self._policy != "never":
                try:
                    os.fsync(self._fh.fileno())
                except OSError:
                    pass
            try:
                self._fh.close()
            except OSError:
                pass
            self.frozen = True


def read_wal(path: str) -> Tuple[List[WalRecord], dict]:
    """Salvage-read a journal: the longest valid dense-``seq`` prefix.

    Returns ``(records, info)`` where ``info`` books what recovery wants
    to report: ``clean`` (a trailing ``clean-shutdown`` record was found),
    ``dropped`` (lines abandoned after the first damaged one — a torn
    trailing record counts), and ``errors`` (human-readable damage notes).

    Only a wrong *format* raises (:class:`~repro.errors.StateDirError`):
    a journal whose header declares a schema this build does not speak
    cannot be half-trusted.  Damage within a well-formed journal degrades
    to the prefix, never raises.
    """
    with open(path, "rb") as fh:
        data = fh.read()
    records: List[WalRecord] = []
    info = {"clean": False, "dropped": 0, "errors": []}
    expected_seq = 0
    lines = [ln for ln in data.split(b"\n") if ln.strip()]
    for index, line in enumerate(lines):
        err: Optional[str] = None
        try:
            doc = json.loads(line)
            if not isinstance(doc, dict):
                err = "record line is not a JSON object"
            elif any(doc.get(k) is None
                     for k in ("seq", "kind", "crc", "payload")):
                err = "record envelope missing seq/kind/crc/payload"
            elif _payload_crc(doc["payload"]) != doc["crc"]:
                err = (f"checksum mismatch (stored {doc['crc']}, computed "
                       f"{_payload_crc(doc['payload'])})")
            elif doc["seq"] != expected_seq:
                err = (f"seq {doc['seq']} breaks the dense prefix "
                       f"(expected {expected_seq})")
        except json.JSONDecodeError as exc:
            err = f"undecodable record line: {exc.msg}"
        if err is not None:
            # prefix rule: nothing after the first damaged line is trusted
            info["dropped"] = len(lines) - index
            info["errors"].append(f"record line {index}: {err}")
            break
        if expected_seq == 0:
            if doc["kind"] != "header":
                raise StateDirError(
                    path, f"journal record 0 is {doc['kind']!r}, "
                          "not a header")
            schema = doc["payload"].get("schema")
            version = doc["payload"].get("version")
            if schema != WAL_SCHEMA or version != WAL_VERSION:
                raise StateDirError(
                    path, f"journal declares {schema!r} v{version!r}; "
                          f"this build speaks {WAL_SCHEMA} v{WAL_VERSION}")
        records.append(WalRecord(seq=doc["seq"], kind=doc["kind"],
                                 payload=doc["payload"]))
        expected_seq += 1
    if records and records[-1].kind == "clean-shutdown" \
            and not info["dropped"]:
        info["clean"] = True
    return records, info
