"""A small blocking client for the ingestion API (stdlib ``http.client``).

One keep-alive connection per client instance — the same socket carries a
whole chunk-streamed upload, which is what the load generator measures.
Every helper returns ``(status, doc)``; :meth:`ServeClient.upload_trace`
and :meth:`ServeClient.wait` add the two conveniences the smoke test,
the chaos bench and the curl walkthrough all share.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import List, Optional, Tuple
from urllib.parse import urlsplit


class ServeClient:
    def __init__(self, base_url: str, *, timeout: float = 60.0) -> None:
        split = urlsplit(base_url)
        assert split.scheme == "http", "only http:// endpoints"
        self._conn = http.client.HTTPConnection(split.hostname,
                                                split.port or 80,
                                                timeout=timeout)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request(self, method: str, path: str,
                body: Optional[bytes] = None) -> Tuple[int, dict]:
        try:
            self._conn.request(method, path, body=body,
                               headers={"Content-Type": "application/json"})
            resp = self._conn.getresponse()
            payload = resp.read()
        except (http.client.HTTPException, ConnectionError):
            # server dropped the connection (e.g. protocol-level 4xx then
            # close, or an injected stream death): reconnect once
            self._conn.close()
            self._conn.request(method, path, body=body,
                               headers={"Content-Type": "application/json"})
            resp = self._conn.getresponse()
            payload = resp.read()
        try:
            doc = json.loads(payload) if payload else {}
        except json.JSONDecodeError:
            doc = {"raw": payload.decode("utf-8", "replace")}
        return resp.status, doc

    # -- the API -------------------------------------------------------------

    def create_trace(self) -> str:
        status, doc = self.request("POST", "/v1/traces")
        assert status == 201, (status, doc)
        return doc["trace_id"]

    def upload_chunk(self, trace_id: str, seq: int,
                     line: bytes) -> Tuple[int, dict]:
        return self.request("PUT", f"/v1/traces/{trace_id}/chunks/{seq}",
                            body=line)

    def upload_trace(self, lines: List[bytes]) -> Tuple[str, dict]:
        """Stream a recorded trace file's lines; returns (id, last ack).

        Raises ``RuntimeError`` on the first rejected chunk — after a
        rejection every later seq would 409 against the dense-prefix rule,
        so there is nothing useful to keep uploading.
        """
        trace_id = self.create_trace()
        ack: dict = {}
        for seq, line in enumerate(lines):
            status, ack = self.upload_chunk(trace_id, seq, line)
            if status != 200:
                raise RuntimeError(
                    f"chunk {seq} rejected with {status}: {ack}")
        return trace_id, ack

    def analyze(self, trace_id: str, **options) -> str:
        body = json.dumps(options).encode() if options else b""
        status, doc = self.request("POST", f"/v1/traces/{trace_id}/analyze",
                                   body=body)
        assert status == 202, (status, doc)
        return doc["job_id"]

    def job(self, job_id: str) -> dict:
        status, doc = self.request("GET", f"/v1/jobs/{job_id}")
        assert status == 200, (status, doc)
        return doc

    def report(self, job_id: str) -> Tuple[int, dict]:
        return self.request("GET", f"/v1/jobs/{job_id}/report")

    def timeline(self, job_id: str) -> dict:
        status, doc = self.request("GET", f"/v1/jobs/{job_id}/timeline")
        assert status == 200, (status, doc)
        return doc

    def wait(self, job_id: str, *, timeout: float = 60.0,
             poll_s: float = 0.005) -> dict:
        """Poll until the job is terminal; raises TimeoutError on a hang."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.job(job_id)
            if doc["state"] in ("done", "degraded", "failed"):
                return doc
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {doc['state']} after {timeout}s")
            time.sleep(poll_s)


def read_trace_lines(path: str) -> List[bytes]:
    """A recorded ``taskgrind-trace/2`` file as upload-ready chunk lines."""
    with open(path, "rb") as fh:
        return [line for line in fh.read().split(b"\n") if line.strip()]
