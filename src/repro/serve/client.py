"""A small blocking client for the ingestion API (stdlib ``http.client``).

One keep-alive connection per client instance — the same socket carries a
whole chunk-streamed upload, which is what the load generator measures.
Every helper returns parsed documents and raises the **same typed
exceptions the server raised**: structured ``{"error": {...}}`` bodies
are mapped back through :func:`error_from_body` onto the
:mod:`repro.errors` taxonomy, so calling code branches on exception
class and machine-readable fields instead of string-matching messages.

Overload behavior: 429/503 responses (and dropped connections) are
retried with **decorrelated-jitter exponential backoff**, honoring the
server's ``Retry-After`` header when present — a fleet of these clients
spreads its retries instead of synchronizing into thundering herds.
Pass ``retries=0`` to observe raw status codes (the backpressure tests
do).
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from repro.errors import (InjectedFault, JobStateError, ResourceNotFound,
                          ServeError, ServeOverloadError,
                          TraceCorruptionError, TraceFormatError,
                          TraceVersionError, UploadSequenceError)
from repro.serve.overload import backoff_delays

#: statuses worth retrying: overload sheds and drain refusals
_RETRY_STATUSES = (429, 503)


def error_from_body(status: int, doc: dict) -> Exception:
    """Reconstruct the typed exception a ``{"error": {...}}`` body carries.

    Unknown or unstructured bodies degrade to a plain
    :class:`~repro.errors.ServeError` that still carries the status and
    raw body in its message — the client never hides what the server
    said, it only upgrades it when it can.
    """
    err = doc.get("error") if isinstance(doc, dict) else None
    if not isinstance(err, dict):
        return ServeError(f"HTTP {status}: {doc!r}")
    etype = err.get("type", "")
    message = err.get("message", f"HTTP {status}")
    try:
        if etype == "UploadSequenceError":
            return UploadSequenceError(
                err.get("trace_id", "?"),
                expected_seq=err.get("expected_seq"),
                got_seq=err.get("got_seq", -1),
                reason=err.get("reason", message))
        if etype == "ResourceNotFound":
            return ResourceNotFound(err.get("resource", "resource"),
                                    err.get("id", "?"))
        if etype == "JobStateError":
            return JobStateError(err.get("job_id", "?"),
                                 err.get("state", "?"),
                                 err.get("reason", message))
        if etype == "ServeOverloadError":
            return ServeOverloadError(
                err.get("resource", "service"),
                retry_after_s=float(err.get("retry_after_s", 0.25)),
                limit=err.get("limit"), current=err.get("current"),
                draining=bool(err.get("draining", False)))
        if etype == "TraceCorruptionError":
            return TraceCorruptionError(
                err.get("trace_id", "?"),
                byte_offset=err.get("byte_offset", 0),
                chunk_seq=err.get("chunk_seq"),
                reason=err.get("reason", message))
        if etype == "TraceVersionError":
            return TraceVersionError(err.get("trace_id", "?"),
                                     err.get("got"), message)
        if etype == "TraceFormatError":
            return TraceFormatError(err.get("trace_id", "?"), message)
        if etype == "InjectedFault":
            fault = InjectedFault(err.get("fault_kind", "unknown"), message)
            return fault
    except (TypeError, ValueError):
        pass                    # malformed fields: fall through to generic
    return ServeError(f"HTTP {status} [{etype}]: {message}")


class ServeClient:
    def __init__(self, base_url: str, *, timeout: float = 60.0,
                 retries: int = 5, backoff_base_s: float = 0.05,
                 backoff_cap_s: float = 2.0) -> None:
        split = urlsplit(base_url)
        assert split.scheme == "http", "only http:// endpoints"
        self._conn = http.client.HTTPConnection(split.hostname,
                                                split.port or 80,
                                                timeout=timeout)
        self._retries = retries
        self._backoff_base_s = backoff_base_s
        self._backoff_cap_s = backoff_cap_s
        #: headers of the most recent response (Retry-After inspection)
        self.last_headers: Dict[str, str] = {}
        #: total retry sleeps performed (bench/test introspection)
        self.retry_sleeps = 0

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _once(self, method: str, path: str,
              body: Optional[bytes]) -> Tuple[int, dict]:
        try:
            self._conn.request(method, path, body=body,
                               headers={"Content-Type": "application/json"})
            resp = self._conn.getresponse()
            payload = resp.read()
        except (http.client.HTTPException, ConnectionError):
            # server dropped the connection (e.g. protocol-level 4xx then
            # close, or an injected stream death): reconnect once
            self._conn.close()
            self._conn.request(method, path, body=body,
                               headers={"Content-Type": "application/json"})
            resp = self._conn.getresponse()
            payload = resp.read()
        self.last_headers = {k.lower(): v for k, v in resp.getheaders()}
        try:
            doc = json.loads(payload) if payload else {}
        except json.JSONDecodeError:
            doc = {"raw": payload.decode("utf-8", "replace")}
        return resp.status, doc

    def request(self, method: str, path: str,
                body: Optional[bytes] = None, *,
                retry: bool = True) -> Tuple[int, dict]:
        """One request, with overload-aware retries.

        A 429/503 is retried up to the client's budget, sleeping the
        larger of the server's ``Retry-After`` and the next decorrelated-
        jitter delay.  The final attempt's status/doc are returned either
        way — helpers decide whether to raise.
        """
        delays = backoff_delays(base_s=self._backoff_base_s,
                                cap_s=self._backoff_cap_s,
                                attempts=self._retries if retry else 0)
        while True:
            status, doc = self._once(method, path, body)
            if status not in _RETRY_STATUSES:
                return status, doc
            delay = next(delays, None)
            if delay is None:
                return status, doc
            hinted = self.last_headers.get("retry-after")
            if hinted is not None:
                try:
                    delay = max(delay, float(hinted))
                except ValueError:
                    pass
            self.retry_sleeps += 1
            time.sleep(min(delay, self._backoff_cap_s))

    def _expect(self, want_status: int, got: Tuple[int, dict]) -> dict:
        status, doc = got
        if status != want_status:
            raise error_from_body(status, doc)
        return doc

    # -- the API -------------------------------------------------------------

    def create_trace(self) -> str:
        doc = self._expect(201, self.request("POST", "/v1/traces"))
        return doc["trace_id"]

    def trace_status(self, trace_id: str) -> dict:
        """``GET /v1/traces/{id}`` — where resumable uploads learn the
        server's ``next_seq`` after a crash on either side."""
        return self._expect(200,
                            self.request("GET", f"/v1/traces/{trace_id}"))

    def upload_chunk(self, trace_id: str, seq: int, line: bytes,
                     *, retry: bool = True) -> Tuple[int, dict]:
        return self.request("PUT", f"/v1/traces/{trace_id}/chunks/{seq}",
                            body=line, retry=retry)

    def upload_trace(self, lines: List[bytes],
                     resume: Optional[str] = None) -> Tuple[str, dict]:
        """Stream a recorded trace file's lines; returns (id, last ack).

        With ``resume=<trace_id>``, the upload continues an existing
        (possibly crash-recovered) upload: the server's ``next_seq`` is
        fetched and only the missing suffix is sent.  Chunks the server
        already accepted ack as idempotent duplicates, so overshooting by
        one after a lost ack is harmless.  Raises the server's typed
        error on the first genuinely rejected chunk — after a rejection
        every later seq would 409 against the dense-prefix rule.
        """
        if resume is not None:
            trace_id = resume
            start = int(self.trace_status(trace_id)["next_seq"])
        else:
            trace_id = self.create_trace()
            start = 0
        ack: dict = {}
        for seq in range(start, len(lines)):
            status, ack = self.upload_chunk(trace_id, seq, lines[seq])
            if status != 200:
                raise error_from_body(status, ack)
        if not ack:             # everything already accepted pre-resume
            ack = self.trace_status(trace_id)
        return trace_id, ack

    def analyze(self, trace_id: str, **options) -> str:
        body = json.dumps(options).encode() if options else b""
        doc = self._expect(202, self.request(
            "POST", f"/v1/traces/{trace_id}/analyze", body=body))
        return doc["job_id"]

    def job(self, job_id: str) -> dict:
        return self._expect(200, self.request("GET", f"/v1/jobs/{job_id}"))

    def report(self, job_id: str) -> Tuple[int, dict]:
        return self.request("GET", f"/v1/jobs/{job_id}/report")

    def timeline(self, job_id: str) -> dict:
        return self._expect(200, self.request(
            "GET", f"/v1/jobs/{job_id}/timeline"))

    def wait(self, job_id: str, *, timeout: float = 60.0,
             poll_s: float = 0.005) -> dict:
        """Poll until the job is terminal; raises TimeoutError on a hang."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.job(job_id)
            if doc["state"] in ("done", "degraded", "failed"):
                return doc
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {doc['state']} after {timeout}s")
            time.sleep(poll_s)


def read_trace_lines(path: str) -> List[bytes]:
    """A recorded ``taskgrind-trace/2`` file as upload-ready chunk lines."""
    with open(path, "rb") as fh:
        return [line for line in fh.read().split(b"\n") if line.strip()]
