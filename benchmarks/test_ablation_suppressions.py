"""S4 — ablation of the Section IV false-positive suppressions.

The paper motivates Section IV with a naive run: Taskgrind without its
suppressions reports enormous numbers of candidate races on a *correct*
LULESH (-s 4 -tel 2: "about 400,000 determinacy races").  This bench runs
the correct LULESH with each suppression toggled and quantifies every
mechanism's contribution.
"""

import pytest

from repro.core.tool import TaskgrindOptions, TaskgrindTool
from repro.machine.machine import Machine
from repro.openmp.api import make_env
from repro.workloads.lulesh import LuleshConfig, run_lulesh


def run_with(options, *, s=4, tel=2, seed=0):
    machine = Machine(seed=seed)
    tool = TaskgrindTool(options)
    machine.add_tool(tool)
    env = make_env(machine, nthreads=1, source_file="lulesh.cc")
    env.rt.ompt.register(tool.make_ompt_shim())
    cfg = LuleshConfig(s=s, tel=tel, tnl=tel)
    machine.run(lambda: run_lulesh(env, cfg))
    tool.finalize()
    return tool


def opts(**kw):
    o = TaskgrindOptions()
    for k, v in kw.items():
        setattr(o.suppression, k, v)
    return o


@pytest.fixture(scope="module")
def baseline():
    return run_with(TaskgrindOptions())


@pytest.fixture(scope="module")
def naive():
    return run_with(opts(suppress_recycling=False, suppress_tls=False,
                         suppress_stack=False, ignore_list=()))


def test_bench_naive_run(benchmark, once):
    tool = once(benchmark, run_with,
                opts(suppress_recycling=False, suppress_tls=False,
                     suppress_stack=False, ignore_list=()))
    assert tool is not None


class TestSuppressionAblation:
    def test_clean_baseline(self, baseline):
        """All suppressions on: the correct program is reported clean."""
        assert baseline.reports == []

    def test_naive_floods(self, baseline, naive):
        """Section IV's motivation: naive DBI floods with candidates."""
        assert len(naive.reports) > 50
        assert len(naive.reports) > 50 * max(1, len(baseline.reports))

    def test_recycling_contribution(self):
        tool = run_with(opts(suppress_recycling=False))
        assert len(tool.reports) > 0          # scratch buffers recycle

    def test_ignore_list_contribution(self):
        tool = run_with(opts(ignore_list=()))
        # runtime-internal (__kmp*) accesses now recorded: more conflicts
        assert tool.recorded_accesses > 0
        assert tool.filtered_accesses == 0

    def test_stack_suppression_contribution(self, naive):
        """Stack conflicts are a measurable share of the naive flood."""
        only_stack_off = run_with(opts(suppress_stack=False))
        assert len(only_stack_off.reports) >= 0    # may be zero for LULESH
        assert naive.suppressor.stats.stack_suppressed == 0

    def test_stats_track_suppressed_classes(self, baseline):
        stats = baseline.suppressor.stats
        assert stats.fully_suppressed_pairs + stats.survived >= 0
