"""Microbenchmarks of the core data structures.

Covers the paper's Section III-B claims: interval trees compact dense
accesses and keep O(log n) operations; plus the reachability bitsets that
back the happens-before queries of Algorithm 1.
"""


from repro.core.segments import SegmentGraph
from repro.util.intervals import IntervalSet
from repro.util.itree import IntervalTree


def dense_insert(n):
    t = IntervalTree()
    for i in range(n):
        t.insert(i * 8, i * 8 + 8)
    return t


def sparse_insert(n):
    t = IntervalTree()
    for i in range(n):
        t.insert(i * 64, i * 64 + 8)
    return t


def test_bench_dense_insert(benchmark):
    t = benchmark(dense_insert, 2000)
    assert len(t) == 1                      # fully coalesced (Fig. 3)


def test_bench_sparse_insert(benchmark):
    t = benchmark(sparse_insert, 2000)
    assert len(t) == 2000
    assert t.height <= 24                   # AVL balance


def test_bench_stab_queries(benchmark):
    t = sparse_insert(4000)

    def stab_many():
        hits = 0
        for i in range(0, 4000 * 64, 997):
            hits += t.overlaps(i, i + 4)
        return hits

    assert benchmark(stab_many) > 0


def test_bench_tree_intersection(benchmark):
    a = sparse_insert(1500)
    b = IntervalTree()
    for i in range(1500):
        b.insert(i * 64 + 32, i * 64 + 48)
    common = IntervalTree()
    common.insert(10 * 64, 10 * 64 + 8)

    def intersect():
        return a.intersects_tree(b), a.intersection_tree(common)

    disjoint, overlap = benchmark(intersect)
    assert not disjoint
    assert overlap.total_bytes == 8


def test_bench_interval_set_union(benchmark):
    a = IntervalSet.from_pairs([(i * 64, i * 64 + 8) for i in range(1000)])
    b = IntervalSet.from_pairs([(i * 64 + 8, i * 64 + 16)
                                for i in range(1000)])
    u = benchmark(a.union, b)
    assert len(u) == 1000                   # adjacent pairs coalesce


def test_bench_reachability(benchmark):
    g = SegmentGraph()
    segs = [g.new_segment(thread_id=0, task=None, kind="task")
            for _ in range(1200)]
    for i in range(1, 1200):
        g.add_edge(segs[max(0, i - (i % 7) - 1)], segs[i])

    def query():
        g._reach = None                     # force recompute
        return g.ordered(segs[0], segs[-1])

    assert benchmark(query) in (True, False)
