"""L456 — the error-reporting comparison (Listings 4-6).

Asserts the Taskgrind report carries every element the paper's Listing 6
shows and the ROMP report carries none of the debug information (Listing 5).
"""

import pytest

from repro.bench.errorreport import render, run_tool
from repro.core.reports import format_report


def test_bench_error_report(benchmark, once):
    text = once(benchmark, render)
    assert "task.1.c" in text


@pytest.fixture(scope="module")
def taskgrind_report():
    tool, reports = run_tool("taskgrind")
    assert len(reports) == 1
    return reports[0]


@pytest.fixture(scope="module")
def romp_report():
    tool, reports = run_tool("romp")
    assert len(reports) == 1
    from repro.core.reports import build_report
    return build_report(tool.machine, reports[0])


class TestListing6Fidelity:
    def test_segment_labels_are_pragma_locations(self, taskgrind_report):
        labels = {taskgrind_report.s1.label(), taskgrind_report.s2.label()}
        assert labels == {"task.1.c:8", "task.1.c:11"}

    def test_conflict_size_and_block(self, taskgrind_report):
        assert taskgrind_report.ranges.total_bytes == 4   # one int
        assert taskgrind_report.block_size == 8           # 2 * sizeof(int)
        assert taskgrind_report.block_addr is not None

    def test_allocation_site(self, taskgrind_report):
        assert str(taskgrind_report.alloc_site) == "task.1.c:3"

    def test_rendered_text(self, taskgrind_report):
        text = format_report(taskgrind_report)
        for needle in ("task.1.c:8", "task.1.c:11", "declared",
                       "independent while accessing the same memory address",
                       "of size 8", "task.1.c:3"):
            assert needle in text, needle


class TestListing5Fidelity:
    def test_romp_has_addresses_only(self, romp_report):
        text = format_report(romp_report, style="romp")
        assert "data race found" in text
        assert "0x" in text
        assert "task.1.c" not in text
        assert "no source information" in text
