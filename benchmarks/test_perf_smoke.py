"""Perf-path smoke: the fast paths must not change any analysis result.

Assert-only (no wall-clock gates — timings live in ``python -m
repro.bench.perf`` / ``BENCH_perf.json``): for every DRB and TMB program,

* the default tool configuration (write-combining recorder + O(1)
  happens-before index) and the legacy configuration
  (``fast_record=False, hb_mode='bitmask'``) produce identical raw
  candidate sets and identical post-suppression reports;
* on the recorded graph, ``find_races_naive`` / ``find_races_indexed`` /
  ``find_races_parallel`` (several worker counts) agree pair-for-pair,
  byte-for-byte.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest

from repro.bench import drb, tmb
from repro.bench.runner import run_benchmark
from repro.core.analysis import (find_races_indexed, find_races_naive,
                                 find_races_parallel)
from repro.core.tool import TaskgrindOptions

SEED = 2                      # the Table I harness seed

ALL_PROGRAMS = [(p, 4) for p in drb.all_programs()] \
    + [(p, 1) for p in tmb.all_programs()]


def _canon(cands) -> List[Tuple]:
    return sorted((c.key(), tuple(c.ranges.pairs())) for c in cands)


def _run(program, nthreads, options=None):
    return run_benchmark(program, "taskgrind", nthreads=nthreads,
                         seed=SEED, taskgrind_options=options)


@pytest.mark.parametrize(
    "program,nthreads", ALL_PROGRAMS,
    ids=[f"{p.name}-{n}t" for p, n in ALL_PROGRAMS])
def test_fastpath_parity(program, nthreads):
    fast = _run(program, nthreads)
    legacy = _run(program, nthreads,
                  TaskgrindOptions(fast_record=False, hb_mode="bitmask"))
    assert fast.verdict == legacy.verdict, \
        f"{program.name}: verdict changed {legacy.verdict} -> {fast.verdict}"
    if fast.tool_obj is None or legacy.tool_obj is None:
        return                      # ncs/segv before the tool ran
    assert fast.tool_obj.raw_candidates == legacy.tool_obj.raw_candidates
    assert [r.key() for r in fast.reports] \
        == [r.key() for r in legacy.reports]


@pytest.mark.parametrize(
    "program,nthreads", ALL_PROGRAMS,
    ids=[f"{p.name}-{n}t" for p, n in ALL_PROGRAMS])
def test_analysis_pass_parity(program, nthreads):
    res = _run(program, nthreads)
    if res.tool_obj is None or res.tool_obj.builder is None:
        return
    graph = res.tool_obj.builder.graph
    naive = _canon(find_races_naive(graph))
    assert _canon(find_races_indexed(graph)) == naive
    for workers in (1, 4):
        assert _canon(find_races_parallel(graph, workers=workers)) == naive


def test_checked_mode_sweep():
    """Run every program with the index cross-checked against the bitmask
    oracle inline (hb_mode='checked' asserts on every answered query)."""
    exact = 0
    for program, nthreads in ALL_PROGRAMS:
        res = _run(program, nthreads,
                   TaskgrindOptions(hb_mode="checked"))
        tool = res.tool_obj
        if tool is None or tool.builder is None:
            continue
        find_races_indexed(tool.builder.graph)    # query-heavy, all asserted
        if tool.builder.hb.exact:
            exact += 1
    # the fork-join majority of the suite must stay on the exact index
    assert exact >= len(ALL_PROGRAMS) // 2
