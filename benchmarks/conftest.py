"""Benchmark-suite configuration.

Every file here regenerates one of the paper's artifacts (see the experiment
index in DESIGN.md) and doubles as a shape assertion: the benchmark measures
the harness's wall-clock cost, and the test body checks the *simulated*
numbers reproduce the paper's qualitative results.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def one_shot(benchmark, fn, *args, **kwargs):
    """Run a heavy harness exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once():
    return one_shot
