"""T1 — regenerate Table I (the microbenchmark verdict matrix).

Asserts the reproduction-critical shapes:

* Taskgrind has the fewest false negatives of all four tools;
* its single FN is the ``mergeable`` row (DRB129), as in the paper;
* TMB single-thread accuracy is 100% for Taskgrind;
* per-tool agreement with the paper's printed cells stays high.
"""

import pytest

from repro.bench.table1 import TOOL_ORDER, run_table1, render


@pytest.fixture(scope="module")
def table1_rows():
    return run_table1(seed=2)


def test_bench_table1(benchmark, once):
    rows = once(benchmark, run_table1, seed=2)
    assert rows


class TestTable1Shape:
    def test_headline_fewest_false_negatives(self, table1_rows):
        fn = {t: sum(r.measured.get(t) == "FN" for r in table1_rows)
              for t in TOOL_ORDER}
        assert fn["taskgrind"] == min(fn.values())
        assert fn["taskgrind"] == 1

    def test_taskgrind_single_fn_is_mergeable(self, table1_rows):
        fns = [r.program for r in table1_rows
               if r.measured.get("taskgrind") == "FN"]
        assert fns == ["129-mergeable-taskwait-orig"]

    def test_tmb_single_thread_accuracy(self, table1_rows):
        """Paper: 'Single-thread execution of TMB reports 100% accuracy.'"""
        for r in table1_rows:
            if r.block == "tmb-1t":
                assert r.measured["taskgrind"] in ("TP", "TN"), r.program

    def test_non_sibling_taskdep_only_taskgrind(self, table1_rows):
        row = next(r for r in table1_rows
                   if r.program == "173-non-sibling-taskdep")
        assert row.measured["taskgrind"] == "TP"
        assert row.measured["tasksanitizer"] == "FN"
        assert row.measured["romp"] == "FN"

    def test_ncs_rows_only_tasksanitizer(self, table1_rows):
        for r in table1_rows:
            assert r.measured["archer"] != "ncs"
            assert r.measured["taskgrind"] != "ncs"
            assert r.measured["romp"] != "ncs"

    def test_romp_segv_row(self, table1_rows):
        row = next(r for r in table1_rows
                   if r.program == "127-tasking-threadprivate1-orig")
        assert row.measured["romp"] == "segv"

    def test_agreement_with_paper(self, table1_rows):
        total = matched = 0
        for r in table1_rows:
            for t in TOOL_ORDER:
                m = r.matches(t)
                if m is not None:
                    total += 1
                    matched += bool(m)
        assert matched / total >= 0.95     # 169/172 as of calibration

    def test_render_smoke(self, table1_rows):
        text = render(table1_rows)
        assert "false negatives" in text
        assert "1000-memory-recycling.1" in text
