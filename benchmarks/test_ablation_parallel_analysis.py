"""A1 — ablation: sequential vs parallel determinacy-race pass.

The paper's Section VII: *"The determinacy race post-processing analysis is
an embarrassingly parallel algorithm, but it is currently run sequentially
within the Valgrind framework."*  This bench builds a large synthetic segment
graph and compares the faithful O(n^2) pass, the address-indexed pass, and
the thread-parallel pass — asserting identical results and measuring the
speedups a parallel pass would buy.
"""

import pytest

from repro.core.analysis import (find_races_indexed, find_races_naive,
                                 find_races_parallel)
from repro.core.segments import SegmentGraph
from repro.util.rng import RngHub


def build_graph(n_segments=300, seed=7):
    """A layered DAG with clustered conflicting accesses."""
    rng = RngHub(seed)
    g = SegmentGraph()
    segs = []
    for i in range(n_segments):
        s = g.new_segment(thread_id=i % 4, task=None, kind="task")
        segs.append(s)
        if i >= 4 and rng.randint("edge", 0, 3) != 0:
            g.add_edge(segs[rng.randint("src", max(0, i - 16), i)], s)
        base = rng.randint("addr", 0, 40) * 64
        size = rng.randint("size", 8, 128)
        s.record(base, size, rng.randint("w", 0, 2) == 0, None)
        s.record(base + 4096, size, True, None)
    return g


@pytest.fixture(scope="module")
def graph():
    return build_graph()


@pytest.fixture(scope="module")
def expected(graph):
    return sorted((c.key(), tuple(c.ranges.pairs()))
                  for c in find_races_naive(graph))


def test_bench_naive(benchmark, graph, expected):
    cands = benchmark(find_races_naive, graph)
    assert sorted((c.key(), tuple(c.ranges.pairs())) for c in cands) == \
        expected


def test_bench_indexed(benchmark, graph, expected):
    cands = benchmark(find_races_indexed, graph)
    assert sorted((c.key(), tuple(c.ranges.pairs())) for c in cands) == \
        expected


def test_bench_parallel(benchmark, graph, expected):
    cands = benchmark(find_races_parallel, graph, workers=4)
    assert sorted((c.key(), tuple(c.ranges.pairs())) for c in cands) == \
        expected


class TestAblationShape:
    def test_indexed_examines_fewer_pairs(self, graph):
        """The address index prunes the O(n^2) pair space."""
        from repro.core.analysis import _candidate_pairs
        segs = [s for s in graph.segments if s.has_accesses]
        n = len(segs)
        assert len(_candidate_pairs(segs)) < n * (n - 1) // 2

    def test_all_passes_agree_on_lulesh(self):
        from repro.core.tool import TaskgrindOptions, TaskgrindTool
        from repro.machine.machine import Machine
        from repro.openmp.api import make_env
        from repro.workloads.lulesh import LuleshConfig, run_lulesh

        counts = {}
        for mode in ("naive", "indexed", "parallel"):
            machine = Machine(seed=0)
            tool = TaskgrindTool(TaskgrindOptions(analysis=mode))
            machine.add_tool(tool)
            env = make_env(machine, nthreads=1, source_file="lulesh.cc")
            env.rt.ompt.register(tool.make_ompt_shim())
            machine.run(lambda: run_lulesh(
                env, LuleshConfig(s=8, racy=True, iterations=2)))
            counts[mode] = len(tool.finalize())
        assert counts["naive"] == counts["indexed"] == counts["parallel"]
        assert counts["naive"] > 0
