"""F4 — regenerate Fig. 4 (time & memory vs mesh size) + the ROMP sidebar.

Shape assertions: O(s^3) growth for every series, the ordering
Taskgrind > Archer > reference in time, the ROMP first-iteration crash with
far larger overheads at big sizes.
"""

import pytest

from repro.bench.fig4 import measure, run_fig4


@pytest.fixture(scope="module")
def points():
    pts = run_fig4(sizes=(4, 8, 16))
    return {(p.tool, p.s): p for p in pts}


def test_bench_fig4_sweep(benchmark, once):
    pts = once(benchmark, run_fig4, (4, 8))
    assert len(pts) == 6


class TestFigureShape:
    def test_cubic_time_growth(self, points):
        for tool in ("none", "archer", "taskgrind"):
            r = points[(tool, 16)].time_s / points[(tool, 8)].time_s
            assert 4 < r < 12, tool              # O(s^3): x8 per doubling

    def test_tool_ordering_every_size(self, points):
        for s in (4, 8, 16):
            assert points[("none", s)].time_s < points[("archer", s)].time_s
            assert points[("archer", s)].time_s < \
                points[("taskgrind", s)].time_s

    def test_memory_ordering_at_large_s(self, points):
        assert points[("none", 16)].mem_mib < points[("archer", 16)].mem_mib
        assert points[("none", 16)].mem_mib < \
            points[("taskgrind", 16)].mem_mib

    def test_memory_growth(self, points):
        for tool in ("none", "archer", "taskgrind"):
            assert points[(tool, 16)].mem_mib > points[(tool, 4)].mem_mib


class TestRompSidebar:
    def test_crashes_first_iteration(self):
        p = measure("romp", 16, 4)
        assert p.crashed

    def test_blows_up_at_large_sizes(self):
        """Paper: 79 s / 75 GB at -s 64 before the crash."""
        p16 = measure("romp", 16, 4)
        p32 = measure("romp", 32, 4)
        assert p32.mem_mib > 4 * p16.mem_mib
        assert p32.time_s > 4 * p16.time_s
        # far above Taskgrind's interval-tree footprint at the same size
        tg = measure("taskgrind", 32, 1)
        assert p32.mem_mib > 10 * tg.mem_mib

    @pytest.mark.slow
    def test_s64_order_of_magnitude(self):
        p = measure("romp", 64, 4)
        assert p.crashed
        assert 40 <= p.time_s <= 200             # paper: 79 s
        assert 30 * 1024 <= p.mem_mib <= 150 * 1024   # paper: 75 GB
