"""X1 — the extended suite as a benchmark target (beyond the paper's table).

One pass over all 15 extra rows under Taskgrind, asserting every verdict
matches the expectation the suite documents (including the modeled
limitations: mutex FPs, taskloop descriptor FPs, user-TLS indexing)."""


from repro.bench.extras import all_programs, run_extras


def test_bench_extras(benchmark, once):
    rows, matches = once(benchmark, run_extras)
    assert matches == len(rows) == len(all_programs())


def test_support_matrix_rows_present():
    names = {p.name for p in all_programs()}
    assert "x006-critical-is-not-ordering" in names     # paper §VI.b
    assert "x015-user-thread-local-indexing" in names   # paper §IV-C limit
