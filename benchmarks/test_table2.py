"""T2 — regenerate Table II (LULESH time/memory/report matrix).

Shape assertions mirror the paper's Section V-B claims:

* ~10x (Archer) and ~100x (Taskgrind) single-thread slowdowns;
* ~4x (Archer) and ~6x (Taskgrind) memory overheads;
* Taskgrind deadlocks with 4 threads (both versions);
* Archer reports nothing single-threaded, even on the racy version —
  Taskgrind reports hundreds of conflicts there;
* Archer's 4-thread report count varies across runs (a range, like the
  paper's "149 to 273").
"""

import pytest

from repro.bench.table2 import run_cell


@pytest.fixture(scope="module")
def cells():
    out = {}
    for racy in (False, True):
        for nthreads in (1, 4):
            for tool in ("none", "archer", "taskgrind"):
                out[(racy, nthreads, tool)] = run_cell(
                    tool, racy=racy, nthreads=nthreads)
    return out


def test_bench_table2_reference(benchmark, once):
    cell = once(benchmark, run_cell, "none", racy=False, nthreads=1)
    assert cell.time_s > 0


def test_bench_table2_taskgrind(benchmark, once):
    cell = once(benchmark, run_cell, "taskgrind", racy=True, nthreads=1)
    assert not cell.deadlock


class TestTable2Shape:
    def test_time_overheads(self, cells):
        ref = cells[(False, 1, "none")].time_s
        archer = cells[(False, 1, "archer")].time_s
        tg = cells[(False, 1, "taskgrind")].time_s
        assert 6 <= archer / ref <= 25          # paper: 12x
        assert 60 <= tg / ref <= 200            # paper: 123x
        assert tg > archer

    def test_memory_overheads(self, cells):
        ref = cells[(False, 1, "none")].mem_mib
        archer = cells[(False, 1, "archer")].mem_mib
        tg = cells[(False, 1, "taskgrind")].mem_mib
        assert 2.5 <= archer / ref <= 6          # paper: 4.1x
        assert 4 <= tg / ref <= 9                # paper: 6.4x

    def test_taskgrind_deadlocks_at_four_threads(self, cells):
        assert cells[(False, 4, "taskgrind")].deadlock
        assert cells[(True, 4, "taskgrind")].deadlock

    def test_taskgrind_fine_at_one_thread(self, cells):
        assert not cells[(False, 1, "taskgrind")].deadlock
        assert not cells[(True, 1, "taskgrind")].deadlock

    def test_single_thread_detection_contrast(self, cells):
        """The paper's key row: Archer 0 reports, Taskgrind 458."""
        assert cells[(True, 1, "archer")].reports == "0"
        assert int(cells[(True, 1, "taskgrind")].reports) > 0

    def test_correct_version_clean_for_taskgrind(self, cells):
        assert cells[(False, 1, "taskgrind")].reports == "0"

    def test_archer_multithread_range(self):
        counts = set()
        for seed in range(6):
            cell = run_cell("archer", racy=True, nthreads=4, seed=seed)
            counts.add(int(cell.reports))
        assert all(c > 0 for c in counts)
        assert len(counts) > 1                  # a genuine range over runs

    def test_archer_reports_on_correct_version_at_4t(self):
        """The paper's 149-to-273 cell: Archer (with the modeled libomp
        annotation gaps) reports false positives even on the correct
        LULESH at 4 threads — and nothing at 1 thread."""
        counts = [int(run_cell("archer", racy=False, nthreads=4,
                               seed=s).reports) for s in range(4)]
        assert all(c > 0 for c in counts)
        assert int(run_cell("archer", racy=False, nthreads=1,
                            seed=0).reports) == 0

    def test_archer_multithread_slower_than_single(self, cells):
        """Paper: 0.12 s at 1 thread vs 0.43-0.46 s at 4 (contention)."""
        assert cells[(False, 4, "archer")].time_s > \
            2 * cells[(False, 1, "archer")].time_s
