"""A2 — related-work comparison: SP-bags (Nondeterminator) vs Taskgrind.

The paper's Section VI-b: Nondeterminator detects Cilk determinacy races
with a low-complexity algorithm (SP-bags) *under the serial-elision
assumption*; "Taskgrind has no such assumption".  This bench:

* checks both tools agree on a Cilk test battery (racy and clean programs);
* measures the cost profile difference: SP-bags works per access during the
  (serial) run; Taskgrind pays a post-mortem segment-pair analysis;
* demonstrates the assumption gap: a program whose *parallel* schedules
  differ from the serial elision still gets analyzed by Taskgrind running
  the actual parallel execution, while SP-bags can only ever see the serial
  order.
"""

import pytest

from repro.baselines.spbags import SpBagsTool
from repro.cilk.runtime import make_cilk_env
from repro.core.cilk_shim import attach_cilk
from repro.core.tool import TaskgrindTool
from repro.machine.machine import Machine


def run_cilk(program, *, tool=None, serial_elision=False, nworkers=4,
             seed=0):
    machine = Machine(seed=seed)
    if tool is not None:
        machine.add_tool(tool)
    env = make_cilk_env(machine, nworkers=nworkers,
                        serial_elision=serial_elision)
    if isinstance(tool, TaskgrindTool):
        attach_cilk(tool, env)
    elif isinstance(tool, SpBagsTool):
        tool.attach_cilk(env)

    def main():
        with env.ctx.function("main", line=1):
            program(env)
    machine.run(main)
    return machine


def make_battery():
    """(name, program, racy) triples."""
    def racy_siblings(env):
        x = env.ctx.malloc(8)

        def child(frame):
            x.write(0)

        def root(frame):
            env.spawn(frame, child)
            env.spawn(frame, child)
            env.sync(frame)
        env.run(root)

    def clean_synced(env):
        x = env.ctx.malloc(8)

        def child(frame):
            x.write(0)

        def root(frame):
            env.spawn(frame, child)
            env.sync(frame)
            env.spawn(frame, child)
            env.sync(frame)
        env.run(root)

    def racy_continuation(env):
        x = env.ctx.malloc(8)

        def child(frame):
            x.read(0)

        def root(frame):
            env.spawn(frame, child)
            x.write(0)
            env.sync(frame)
        env.run(root)

    def clean_tree(env):
        a = env.ctx.malloc(8 * 16, elem=8)

        def leaf(frame, i):
            a.write(i)

        def root(frame):
            for i in range(16):
                env.spawn(frame, leaf, i)
            env.sync(frame)
        env.run(root)

    return [("racy-siblings", racy_siblings, True),
            ("clean-synced", clean_synced, False),
            ("racy-continuation", racy_continuation, True),
            ("clean-tree", clean_tree, False)]


def run_spbags_battery():
    out = {}
    for name, program, racy in make_battery():
        tool = SpBagsTool()
        run_cilk(program, tool=tool, serial_elision=True)
        out[name] = bool(tool.finalize())
    return out


def run_taskgrind_battery():
    out = {}
    for name, program, racy in make_battery():
        tool = TaskgrindTool()
        run_cilk(program, tool=tool)
        out[name] = bool(tool.finalize())
    return out


def test_bench_spbags(benchmark):
    verdicts = benchmark(run_spbags_battery)
    assert verdicts == {name: racy for name, _p, racy in make_battery()}


def test_bench_taskgrind_cilk(benchmark):
    verdicts = benchmark(run_taskgrind_battery)
    assert verdicts == {name: racy for name, _p, racy in make_battery()}


class TestAssumptionGap:
    def test_spbags_needs_serial_elision(self):
        from repro.errors import ToolError
        tool = SpBagsTool()
        _name, program, _racy = make_battery()[0]
        with pytest.raises(ToolError):
            run_cilk(program, tool=tool, serial_elision=False)

    def test_taskgrind_analyzes_actual_parallel_run(self):
        _name, program, _racy = make_battery()[0]
        for seed in range(3):
            tool = TaskgrindTool()
            machine = run_cilk(program, tool=tool, seed=seed)
            assert tool.finalize()
            assert machine.scheduler.peak_live > 1   # truly parallel run
