"""Tests for the Qthreads runtime (FEBs) and its Taskgrind shim."""


from repro.core.qthreads_shim import attach_qthreads
from repro.core.tool import TaskgrindTool
from repro.machine.machine import Machine
from repro.qthreads.feb import FebTable
from repro.qthreads.runtime import make_qthreads_env


def run_qt(program, *, nworkers=4, tool=None, seed=0):
    machine = Machine(seed=seed)
    if tool is not None:
        machine.add_tool(tool)
    env = make_qthreads_env(machine, nworkers=nworkers)
    if tool is not None:
        attach_qthreads(tool, env)
    box = {}

    def main():
        with env.ctx.function("main", line=1):
            # program(env) is the body of the main qthread: env.run starts
            # the shepherd pool and drains every forked qthread
            box["result"] = env.run(program, env)
    machine.run(main)
    return box.get("result"), machine


class TestFebTable:
    def test_initially_empty(self):
        t = FebTable()
        assert not t.is_full(0x100)

    def test_fill_drain_cycle(self):
        t = FebTable()
        g1 = t.fill(0x100, "v1")
        assert t.is_full(0x100)
        assert t.drain(0x100) == "v1"
        assert not t.is_full(0x100)
        g2 = t.fill(0x100, "v2")
        assert g2 == g1 + 1

    def test_peek_preserves(self):
        t = FebTable()
        t.fill(0x100, 7)
        assert t.peek(0x100) == 7
        assert t.is_full(0x100)


class TestQthreadsRuntime:
    def test_fork_and_drain(self):
        done = []

        def program(env):
            def worker(i):
                done.append(i)
            for i in range(8):
                env.fork(worker, i)
            return "main done"

        result, _ = run_qt(program)
        assert result == "main done"
        assert sorted(done) == list(range(8))

    def test_feb_producer_consumer(self):
        def program(env):
            word = env.ctx.malloc(8, name="feb")
            out = []

            def producer():
                env.writeEF(word, 41)

            def consumer():
                out.append(env.readFE(word))

            env.fork(producer)
            env.fork(consumer)
            # main waits for the drain implicitly via run()
            return out

        result, _ = run_qt(program)
        # result is captured by reference; drain happened before run returned
        assert result == [41]

    def test_writeEF_blocks_until_empty(self):
        order = []

        def program(env):
            word = env.ctx.malloc(8)
            env.writeF(word, 1)

            def rewriter():
                env.writeEF(word, 2)      # must wait for the drain
                order.append("rewrote")

            def drainer():
                order.append(("drained", env.readFE(word)))

            env.fork(rewriter)
            env.fork(drainer)

        run_qt(program)
        assert order[0] == ("drained", 1)
        assert order[1] == "rewrote"

    def test_readFF_multiple_consumers(self):
        def program(env):
            word = env.ctx.malloc(8)
            seen = []

            def reader():
                seen.append(env.readFF(word))

            env.fork(reader)
            env.fork(reader)
            env.writeF(word, 9)
            return seen

        seen, _ = run_qt(program)
        assert seen == [9, 9]

    def test_work_spreads(self):
        threads = set()

        def program(env):
            def worker():
                threads.add(env.machine.scheduler.current_id())
                env.ctx.compute(500)
            for _ in range(12):
                env.fork(worker)

        run_qt(program)
        assert len(threads) > 1


class TestQthreadsTaskgrind:
    def test_feb_transfer_orders_accesses(self):
        """Producer writes data, signals via FEB; consumer reads after the
        FEB read: no race (the shim adds the transfer edge)."""
        def program(env):
            data = env.ctx.malloc(8, name="data")
            flag = env.ctx.malloc(8, name="flag")

            def producer():
                data.write(0, 123, line=7)
                env.writeEF(flag, 1)

            def consumer():
                env.readFE(flag)
                data.read(0, line=12)

            env.fork(producer)
            env.fork(consumer)

        tool = TaskgrindTool()
        run_qt(program, tool=tool)
        assert tool.finalize() == []

    def test_missing_feb_sync_is_a_race(self):
        def program(env):
            data = env.ctx.malloc(8, name="data")

            def producer():
                data.write(0, 123, line=7)

            def consumer():
                data.read(0, line=12)      # no FEB ordering at all

            env.fork(producer)
            env.fork(consumer)

        tool = TaskgrindTool()
        run_qt(program, tool=tool)
        assert tool.finalize()

    def test_feb_word_itself_never_reported(self):
        def program(env):
            flag = env.ctx.malloc(8, name="flag")

            def producer():
                env.writeEF(flag, 1)

            def consumer():
                env.readFE(flag)

            env.fork(producer)
            env.fork(consumer)

        tool = TaskgrindTool()
        run_qt(program, tool=tool)
        assert tool.finalize() == []

    def test_fork_prefix_ordered(self):
        def program(env):
            x = env.ctx.malloc(8)
            x.write(0, 1, line=4)           # before the fork

            def child():
                x.read(0, line=7)

            env.fork(child)

        tool = TaskgrindTool()
        run_qt(program, tool=tool)
        assert tool.finalize() == []

    def test_chain_of_transfers(self):
        """fork A -> writeEF -> B readFE -> writeEF -> C readFE: all ordered."""
        def program(env):
            data = env.ctx.malloc(8)
            f1 = env.ctx.malloc(8)
            f2 = env.ctx.malloc(8)

            def a():
                data.write(0, 1)
                env.writeEF(f1, 1)

            def b():
                env.readFE(f1)
                data.write(0, 2)
                env.writeEF(f2, 1)

            def c():
                env.readFE(f2)
                data.read(0)

            env.fork(a)
            env.fork(b)
            env.fork(c)

        tool = TaskgrindTool()
        run_qt(program, tool=tool)
        assert tool.finalize() == []
