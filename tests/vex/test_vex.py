"""Tests for the instrumentation layer: hub, client requests, replacement."""

import pytest

from repro.errors import SegmentationFault
from repro.machine.cost import CostModel, ToolCost
from repro.machine.debuginfo import DebugInfo
from repro.machine.memory import AddressSpace, Region, RegionKind
from repro.vex.client_requests import ClientRequestRouter
from repro.vex.events import AccessEvent
from repro.vex.instrument import Instrumentation
from repro.vex.replacement import ReplacementRegistry
from repro.vex.tool import NullTool, Tool


class Capture(Tool):
    name = "capture"

    def __init__(self, dbi=True):
        super().__init__()
        self.is_dbi = dbi
        self.events = []

    def on_access(self, event):
        self.events.append(event)


def make_hub(tools=(), tool_cost=None):
    space = AddressSpace()
    space.map_region(Region("g", 0x1000, 0x1000, RegionKind.GLOBALS))
    cost = CostModel(tool_cost=tool_cost)
    hub = Instrumentation(space, cost)
    for t in tools:
        hub.add_tool(t)
    debug = DebugInfo()
    return hub, cost, debug


class TestInstrumentationHub:
    def test_dispatch_to_dbi_tool(self):
        tool = Capture(dbi=True)
        hub, _, debug = make_hub([tool])
        sym = debug.intern("main", instrumented=True)
        hub.access(0x1000, 8, True, thread=None, symbol=sym, loc=None)
        assert len(tool.events) == 1
        assert tool.events[0].is_write

    def test_compile_time_tool_scope(self):
        tool = Capture(dbi=False)
        hub, _, debug = make_hub([tool])
        blob = debug.intern("vendor", instrumented=False)
        hub.access(0x1000, 8, True, thread=None, symbol=blob, loc=None)
        assert tool.events == []
        user = debug.intern("main", instrumented=True)
        hub.access(0x1000, 8, False, thread=None, symbol=user, loc=None)
        assert len(tool.events) == 1

    def test_unmapped_access_faults_before_dispatch(self):
        tool = Capture()
        hub, _, debug = make_hub([tool])
        sym = debug.intern("main")
        with pytest.raises(SegmentationFault):
            hub.access(0x10, 8, True, thread=None, symbol=sym, loc=None)
        assert tool.events == []

    def test_disabled_hub_skips_tools_but_charges(self):
        tool = Capture()
        hub, cost, debug = make_hub([tool])
        hub.enabled = False
        sym = debug.intern("main")
        hub.access(0x1000, 8, True, thread=None, symbol=sym, loc=None)
        assert tool.events == []
        assert cost.counters["accesses"] == 1

    def test_observed_access_costs_more(self):
        heavy = ToolCost(access_factor=50.0)
        tool = Capture(dbi=True)
        hub_obs, cost_obs, debug = make_hub([tool], tool_cost=heavy)
        sym = debug.intern("main")
        hub_obs.access(0x1000, 64, True, thread=None, symbol=sym, loc=None)
        hub_plain, cost_plain, debug2 = make_hub([], tool_cost=heavy)
        sym2 = debug2.intern("main")
        hub_plain.access(0x1000, 64, True, thread=None, symbol=sym2, loc=None)
        assert cost_obs.clock.makespan_ops > 10 * cost_plain.clock.makespan_ops

    def test_atomic_flag_propagates(self):
        tool = Capture()
        hub, _, debug = make_hub([tool])
        sym = debug.intern("main")
        hub.access(0x1000, 8, True, thread=None, symbol=sym, loc=None,
                   atomic=True)
        assert tool.events[0].atomic


class TestClientRequests:
    def test_dispatch_and_result(self):
        router = ClientRequestRouter()
        router.subscribe("ping", lambda p: p + 1)
        assert router.request("ping", 41) == 42
        assert router.request_count == 1

    def test_multiple_handlers_last_result_wins(self):
        router = ClientRequestRouter()
        router.subscribe("x", lambda p: 1)
        router.subscribe("x", lambda p: 2)
        assert router.request("x") == 2

    def test_unknown_request_is_noop(self):
        router = ClientRequestRouter()
        assert router.request("nothing", 1) is None

    def test_unsubscribe_all(self):
        class Owner:
            def handler(self, p):
                return "hit"
        owner = Owner()
        router = ClientRequestRouter()
        router.subscribe("y", owner.handler)
        router.unsubscribe_all(owner)
        assert router.request("y") is None


class TestReplacement:
    def test_replace_and_query(self):
        reg = ReplacementRegistry()
        assert not reg.is_replaced("free")
        reg.replace("free")
        assert reg.is_replaced("free")
        reg.remove("free")
        assert not reg.is_replaced("free")

    def test_custom_handler_called(self):
        reg = ReplacementRegistry()
        calls = []
        reg.replace("malloc", lambda size: calls.append(size))
        reg.call("malloc", 64)
        assert calls == [64]

    def test_clear(self):
        reg = ReplacementRegistry()
        reg.replace("a")
        reg.replace("b")
        reg.clear()
        assert not reg.is_replaced("a") and not reg.is_replaced("b")


class TestToolBase:
    def test_null_tool_defaults(self):
        t = NullTool()
        assert t.memory_bytes(123) == 0
        assert t.finalize() == []
        t.compile_check(object())          # accepts anything

    def test_sees_matrix(self):
        from repro.machine.debuginfo import Symbol
        dbi, ct = Capture(dbi=True), Capture(dbi=False)
        inst = Symbol("a", instrumented=True)
        blob = Symbol("b", instrumented=False)
        ev_inst = AccessEvent(0, 8, True, 0, inst, None)
        ev_blob = AccessEvent(0, 8, True, 0, blob, None)
        assert dbi.sees(ev_inst) and dbi.sees(ev_blob)
        assert ct.sees(ev_inst) and not ct.sees(ev_blob)
