"""Tests for the static IR pre-pass (:class:`repro.vex.elide.StaticElider`).

The binary-path half of compile-time elision: const-propagation over a
translated SuperBlock, classifying provably in-range accesses, and the
instrumenter swapping their tracking hooks for counting no-ops.
"""

from repro.core.suppress import SuppressionConfig
from repro.machine.machine import Machine
from repro.machine.program import GuestContext
from repro.vex.elide import ALLOC_LOCAL, STACK_LOCAL, ElisionPlan, StaticElider
from repro.vex.ir import Dirty, Load, Store, WrTmp
from repro.vex.translate import Assembler, GuestVM, instrument_block, \
    translate_block


def make_elider(lo=0x1000, hi=0x1100, klass=STACK_LOCAL, **cfg):
    plan = ElisionPlan(SuppressionConfig(**cfg))
    elider = StaticElider(plan, symbol="blob")
    elider.declare_range(lo, hi, klass, name="buf")
    return elider


def translate(src):
    binary = Assembler().assemble(src)
    return translate_block(binary.block_at(binary.base))


def dirty_names(sb):
    return [s.name for s in sb.stmts if isinstance(s, Dirty)]


class TestClassifyBlock:
    def test_li_materialized_store_classified(self):
        sb = translate("li r1, 0x1000\nst [r1], r2\nhalt")
        elider = make_elider()
        decisions = elider.classify_block(sb)
        store_idx = next(k for k, s in enumerate(sb.stmts)
                         if isinstance(s, Store))
        assert list(decisions) == [store_idx]
        assert decisions[store_idx].klass == STACK_LOCAL
        assert decisions[store_idx].name == "buf"

    def test_offset_arithmetic_propagates(self):
        # addr = (0x1000 + 0x20) + 0x18 via addi and memref offset
        sb = translate("li r1, 0x1000\naddi r1, r1, 0x20\n"
                       "ld r2, [r1+0x18]\nhalt")
        decisions = make_elider().classify_block(sb)
        load_idx = next(k for k, s in enumerate(sb.stmts)
                        if isinstance(s, WrTmp) and isinstance(s.expr, Load))
        assert list(decisions) == [load_idx]

    def test_unknown_base_register_stays_tracked(self):
        sb = translate("st [r9], r2\nhalt")
        assert make_elider().classify_block(sb) == {}

    def test_address_outside_declared_range_stays_tracked(self):
        sb = translate("li r1, 0x2000\nst [r1], r2\nhalt")
        assert make_elider().classify_block(sb) == {}

    def test_range_straddle_stays_tracked(self):
        # 8-byte access ending past the declared hi is not provably inside
        sb = translate("li r1, 0x10fc\nst [r1], r2\nhalt")
        assert make_elider().classify_block(sb) == {}

    def test_loaded_value_is_not_constant(self):
        # r1 = *(0x1000) is runtime data: the second access is unprovable
        sb = translate("li r1, 0x1000\nld r1, [r1]\nst [r1], r2\nhalt")
        decisions = make_elider().classify_block(sb)
        assert len(decisions) == 1        # only the load itself is provable
        (k,) = decisions
        assert isinstance(sb.stmts[k], WrTmp)

    def test_runtime_toggle_gates_the_class(self):
        sb = translate("li r1, 0x1000\nst [r1], r2\nhalt")
        elider = make_elider(suppress_stack=False)
        assert elider.classify_block(sb) == {}
        # the declaration is still on the books, just not elided
        assert elider.plan.sites and elider.plan.elided_sites == 0


class TestInstrumentBlock:
    SRC = "li r1, 0x1000\nst [r1], r2\nld r3, [r9]\nhalt"

    def test_elided_site_gets_noop_hook(self):
        hooked = instrument_block(translate(self.SRC), lambda *a: None,
                                  elider=make_elider())
        names = dirty_names(hooked)
        assert names == ["elided_access", "track_load"]

    def test_no_elider_keeps_all_tracking_hooks(self):
        hooked = instrument_block(translate(self.SRC), lambda *a: None)
        assert dirty_names(hooked) == ["track_store", "track_load"]

    def test_noop_hook_counts_into_plan(self):
        elider = make_elider()
        hooked = instrument_block(translate(self.SRC), lambda *a: None,
                                  elider=elider)
        noop = next(s for s in hooked.stmts
                    if isinstance(s, Dirty) and s.name == "elided_access")
        noop.callback()
        noop.callback()
        assert elider.plan.elided_accesses == 2


class TestGuestVMEndToEnd:
    def run_blob(self, *, elide=True, **cfg):
        machine = Machine(seed=0)
        ctx = GuestContext(machine)
        results = {}

        def main():
            with ctx.function("main", line=1):
                buf = ctx.malloc(32, elem=8, name="buf")
                out = ctx.malloc(8, elem=8, name="out")
                src = f"""
                    li  r1, {buf.addr:#x}
                    li  r2, 7
                    st  [r1], r2        ; provably inside buf
                    ld  r3, [r1+8]      ; provably inside buf
                    st  [r4], r2        ; r4 set at runtime: tracked
                    halt
                """
                plan = ElisionPlan(SuppressionConfig(**cfg), enabled=elide)
                elider = StaticElider(plan, symbol="blob")
                elider.declare_range(buf.addr, buf.addr + 32, ALLOC_LOCAL,
                                     name="buf")
                vm = GuestVM(ctx, Assembler().assemble(src), elider=elider)
                vm.regs[4] = out.addr
                before = machine.cost.counters["accesses"]
                vm.run()
                results["plan"] = plan
                results["tracked"] = machine.cost.counters["accesses"] - before
        machine.run(main)
        return results

    def test_elided_counts_and_tracked_residue(self):
        results = self.run_blob()
        assert results["plan"].elided_accesses == 2
        assert results["plan"].elided_sites == 2
        assert results["tracked"] == 1     # only the runtime-addressed store

    def test_disabled_plan_tracks_everything(self):
        results = self.run_blob(elide=False)
        assert results["plan"].elided_accesses == 0
        assert results["tracked"] == 3

    def test_broken_recycling_toggle_tracks_alloc_sites(self):
        results = self.run_blob(suppress_recycling=False)
        assert results["plan"].elided_accesses == 0
        assert results["tracked"] == 3
