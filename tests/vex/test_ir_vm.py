"""Tests for the VEX IR, the guest ISA translator, and the instrumented VM."""

import pytest

from repro.errors import MachineError
from repro.machine.machine import Machine
from repro.machine.program import GuestContext
from repro.vex.ir import Dirty, IMark, Load, Store, WrTmp
from repro.vex.translate import (Assembler, GuestVM, instrument_block,
                                 translate_block)


def make_ctx():
    machine = Machine(seed=0)
    ctx = GuestContext(machine)
    return machine, ctx


SUM_LOOP = """
    ; r1 = base, r2 = n, r3 = acc, r4 = i, r5 = addr, r6 = elem
    li   r3, 0
    li   r4, 0
loop:
    bne  r4, r2, body
    jmp  done
body:
    li   r6, 8
    mul  r5, r4, r6
    add  r5, r5, r1
    ld   r6, [r5]
    add  r3, r3, r6
    addi r4, r4, 1
    jmp  loop
done:
    st   [r7], r3
    halt
"""


class TestAssembler:
    def test_assembles_and_labels(self):
        binary = Assembler().assemble(SUM_LOOP)
        assert "loop" in binary.labels and "done" in binary.labels
        assert binary.at(binary.base).op == "li"

    def test_block_extraction_stops_at_control_flow(self):
        binary = Assembler().assemble(SUM_LOOP)
        block = binary.block_at(binary.base)
        assert [i.op for i in block] == ["li", "li", "bne"]

    def test_bad_mnemonic(self):
        with pytest.raises(MachineError, match="unknown mnemonic"):
            Assembler().assemble("frobnicate r0, r1")

    def test_pc_out_of_range(self):
        binary = Assembler().assemble("halt")
        with pytest.raises(MachineError, match="out of range"):
            binary.at(binary.base + 400)


class TestTranslation:
    def test_imark_per_instruction(self):
        binary = Assembler().assemble("li r0, 1\nli r1, 2\nhalt")
        sb = translate_block(binary.block_at(binary.base))
        assert sum(isinstance(s, IMark) for s in sb.stmts) == 3
        assert sb.next_addr is None

    def test_load_store_made_explicit(self):
        binary = Assembler().assemble("ld r0, [r1+8]\nst [r2], r0\nhalt")
        sb = translate_block(binary.block_at(binary.base))
        loads = [s for s in sb.stmts
                 if isinstance(s, WrTmp) and isinstance(s.expr, Load)]
        stores = [s for s in sb.stmts if isinstance(s, Store)]
        assert len(loads) == 1 and len(stores) == 1

    def test_branch_produces_exit_and_fallthrough(self):
        binary = Assembler().assemble("x:\nbne r0, r1, x\nhalt")
        sb = translate_block(binary.block_at(binary.base))
        assert sb.next_addr == binary.base + 4

    def test_pretty_smoke(self):
        binary = Assembler().assemble("li r0, 1\nhalt")
        text = translate_block(binary.block_at(binary.base)).pretty()
        assert "IRSB" in text and "IMark" in text


class TestInstrumentation:
    def test_dirty_before_every_access(self):
        binary = Assembler().assemble("ld r0, [r1]\nst [r2], r0\nhalt")
        sb = translate_block(binary.block_at(binary.base))
        hooked = instrument_block(sb, lambda *a: None)
        dirties = [s for s in hooked.stmts if isinstance(s, Dirty)]
        assert len(dirties) == 2
        names = {d.name for d in dirties}
        assert names == {"track_load", "track_store"}
        # hook precedes the access it covers
        idx_store = next(i for i, s in enumerate(hooked.stmts)
                         if isinstance(s, Store))
        assert isinstance(hooked.stmts[idx_store - 1], Dirty)


class TestGuestVM:
    def run_sum(self, n=5):
        machine, ctx = make_ctx()
        results = {}

        def main():
            with ctx.function("main", line=1):
                data = ctx.malloc(8 * n, elem=8, name="data")
                out = ctx.malloc(8, elem=8, name="out")
                for i in range(n):
                    machine.space.store(data.index_addr(i), 8, i + 1)
                binary = Assembler().assemble(SUM_LOOP)
                vm = GuestVM(ctx, binary)
                vm.regs[1] = data.addr
                vm.regs[2] = n
                vm.regs[7] = out.addr
                vm.run()
                results["sum"] = machine.space.load(out.addr, 8)
                results["vm"] = vm
        machine.run(main)
        return machine, results

    def test_computes_the_sum(self):
        _, results = self.run_sum(5)
        assert results["sum"] == 15

    def test_translation_cache_reused(self):
        _, results = self.run_sum(6)
        vm = results["vm"]
        assert vm.blocks_executed > vm.translations
        assert vm.translations <= 5          # distinct blocks only

    def test_accesses_flow_through_instrumentation(self):
        machine, results = self.run_sum(4)
        # 4 element loads + 1 result store, all recorded by the cost model
        assert machine.cost.counters["accesses"] >= 5

    def test_infinite_loop_guard(self):
        machine, ctx = make_ctx()

        def main():
            with ctx.function("main", line=1):
                binary = Assembler().assemble("x:\njmp x")
                vm = GuestVM(ctx, binary)
                vm.run(max_blocks=50)
        with pytest.raises(MachineError, match="budget"):
            machine.run(main)


class TestBinaryBlobVisibility:
    """The paper's Section I motivation, end to end."""

    BLOB = """
        st [r1], r2      ; write the shared word
        halt
    """

    def _run_with(self, tool):
        from repro.openmp.api import make_env
        machine = Machine(seed=0)
        machine.add_tool(tool)
        env = make_env(machine, nthreads=4)
        env.rt.ompt.register(tool.make_ompt_shim())
        ctx = env.ctx

        def main():
            with ctx.function("main", line=1):
                shared = ctx.malloc(8, line=3, name="shared")
                binary = Assembler().assemble(self.BLOB)

                def call_blob(tv):
                    vm = GuestVM(ctx, binary)     # a closed-source library
                    vm.regs[1] = shared.addr
                    vm.regs[2] = 7
                    vm.run()

                def body():
                    ctx.line(8)
                    env.task(call_blob)
                    ctx.line(10)
                    env.task(call_blob)
                    env.taskwait()
                env.parallel_single(body)
        machine.run(main)
        return tool.finalize()

    def test_taskgrind_sees_binary_only_race(self):
        from repro.core.tool import TaskgrindTool
        assert self._run_with(TaskgrindTool())

    def test_archer_is_blind(self):
        """Compile-time instrumentation cannot see inside the blob: the
        false-negative class DBI eliminates."""
        from repro.baselines.archer import ArcherTool
        assert self._run_with(ArcherTool()) == []

    def test_tasksanitizer_is_blind(self):
        from repro.baselines.tasksanitizer import TaskSanitizerTool
        assert self._run_with(TaskSanitizerTool()) == []

    def test_romp_sees_it_too(self):
        from repro.baselines.romp import RompTool
        assert self._run_with(RompTool())
