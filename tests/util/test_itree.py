"""Unit + property tests for the AVL interval tree (repro.util.itree).

The property tests use :class:`IntervalSet` as an oracle: any sequence of
inserts must leave the tree covering exactly the same bytes, with invariants
(AVL balance, disjoint coalesced nodes, correct augmentation) intact.
"""

from hypothesis import given, settings, strategies as st

from repro.util.intervals import IntervalSet
from repro.util.itree import IntervalTree


def build(pairs):
    t = IntervalTree()
    for lo, hi in pairs:
        t.insert(lo, hi)
    return t


class TestInsertCoalescing:
    def test_single(self):
        t = build([(0, 10)])
        assert t.pairs() == [(0, 10)]
        assert len(t) == 1
        assert t.total_bytes == 10

    def test_adjacent_merge(self):
        t = build([(0, 10), (10, 20)])
        assert t.pairs() == [(0, 20)]
        assert len(t) == 1

    def test_overlap_merge(self):
        t = build([(0, 10), (5, 15)])
        assert t.pairs() == [(0, 15)]

    def test_dense_sweep_one_node(self):
        """A segment sweeping a dense array compacts to a single node (Fig. 3)."""
        t = IntervalTree()
        for i in range(0, 1000, 8):
            t.insert(i, i + 8)
        assert len(t) == 1
        assert t.pairs() == [(0, 1000)]

    def test_reverse_sweep_one_node(self):
        t = IntervalTree()
        for i in range(992, -1, -8):
            t.insert(i, i + 8)
        assert len(t) == 1

    def test_bridging_insert_absorbs_many(self):
        t = build([(0, 2), (10, 12), (20, 22), (30, 32)])
        assert len(t) == 4
        t.insert(1, 31)
        assert t.pairs() == [(0, 32)]
        assert len(t) == 1

    def test_disjoint_stay_separate(self):
        t = build([(0, 5), (10, 15), (20, 25)])
        assert len(t) == 3
        assert t.total_bytes == 15

    def test_empty_insert_noop(self):
        t = build([(0, 5)])
        t.insert(8, 8)
        assert t.pairs() == [(0, 5)]


class TestQueries:
    def test_overlaps(self):
        t = build([(10, 20), (30, 40)])
        assert t.overlaps(15, 16)
        assert t.overlaps(0, 11)
        assert t.overlaps(39, 100)
        assert not t.overlaps(20, 30)
        assert not t.overlaps(0, 10)
        assert not t.overlaps(40, 50)

    def test_contains_point(self):
        t = build([(10, 20)])
        assert t.contains_point(10)
        assert t.contains_point(19)
        assert not t.contains_point(20)

    def test_covers(self):
        t = build([(0, 10), (20, 30)])
        assert t.covers(0, 10)
        assert t.covers(3, 7)
        assert not t.covers(5, 25)
        assert not t.covers(15, 18)
        assert t.covers(5, 5)   # empty range trivially covered

    def test_stab(self):
        t = build([(0, 5), (10, 15), (20, 25)])
        hits = t.stab(3, 21)
        assert [(h.lo, h.hi) for h in hits] == [(0, 5), (10, 15), (20, 25)]
        assert t.stab(5, 10) == []

    def test_iteration_in_order(self):
        t = build([(20, 25), (0, 5), (10, 15)])
        assert t.pairs() == [(0, 5), (10, 15), (20, 25)]


class TestTreeTreeOps:
    def test_intersects_tree(self):
        a = build([(0, 10), (100, 110)])
        b = build([(50, 105)])
        assert a.intersects_tree(b)
        assert b.intersects_tree(a)

    def test_no_intersection(self):
        a = build([(0, 10)])
        b = build([(10, 20)])
        assert not a.intersects_tree(b)

    def test_intersection_tree_contents(self):
        a = build([(0, 10), (20, 30)])
        b = build([(5, 25)])
        assert a.intersection_tree(b).pairs() == [(5, 10), (20, 25)]

    def test_intersection_empty_tree(self):
        a = build([(0, 10)])
        b = IntervalTree()
        assert not a.intersects_tree(b)
        assert a.intersection_tree(b).pairs() == []


class TestBalance:
    def test_logarithmic_height_ascending(self):
        t = IntervalTree()
        for i in range(1024):
            t.insert(i * 10, i * 10 + 5)   # never coalesce
        assert len(t) == 1024
        assert t.height <= 2 * 10 + 2      # ~1.44 log2(n) for AVL
        t.check_invariants()

    def test_logarithmic_height_descending(self):
        t = IntervalTree()
        for i in range(1023, -1, -1):
            t.insert(i * 10, i * 10 + 5)
        assert len(t) == 1024
        assert t.height <= 22
        t.check_invariants()


pair_lists = st.lists(
    st.tuples(st.integers(0, 500), st.integers(1, 40)).map(
        lambda t: (t[0], t[0] + t[1])),
    max_size=60,
)


class TestPropertyVsOracle:
    @given(pair_lists)
    @settings(max_examples=200, deadline=None)
    def test_matches_interval_set_oracle(self, pairs):
        tree = build(pairs)
        oracle = IntervalSet.from_pairs(pairs)
        assert tree.pairs() == oracle.pairs()
        assert tree.total_bytes == oracle.total_bytes
        tree.check_invariants()

    @given(pair_lists, st.integers(0, 550), st.integers(0, 550))
    @settings(max_examples=200, deadline=None)
    def test_overlap_query_matches_oracle(self, pairs, a, b):
        lo, hi = min(a, b), max(a, b)
        tree = build(pairs)
        oracle = IntervalSet.from_pairs(pairs)
        assert tree.overlaps(lo, hi) == oracle.overlaps_range(lo, hi)
        assert tree.covers(lo, hi) == oracle.covers_range(lo, hi)

    @given(pair_lists, pair_lists)
    @settings(max_examples=150, deadline=None)
    def test_tree_intersection_matches_set_intersection(self, pa, pb):
        ta, tb = build(pa), build(pb)
        sa, sb = IntervalSet.from_pairs(pa), IntervalSet.from_pairs(pb)
        expected = sa.intersection(sb)
        assert ta.intersection_tree(tb) == expected
        assert ta.intersects_tree(tb) == bool(expected)
