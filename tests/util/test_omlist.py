"""Unit + property tests for the order-maintenance list (repro.util.omlist).

Oracle: a plain Python list holding the nodes in order.  Every OrderList
operation is mirrored on the oracle; after each step the labels must be
strictly increasing along the links and every pairwise ``precedes`` answer
must match the oracle's index comparison.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.util.omlist import OrderList


class TestBasics:
    def test_insert_first_last(self):
        ol = OrderList()
        a = ol.insert_first()
        b = ol.insert_last()
        c = ol.insert_first()
        assert [n for n in ol] == [c, a, b]
        assert OrderList.precedes(c, a) and OrderList.precedes(a, b)
        ol.check_invariants()

    def test_insert_after_stacks(self):
        """Repeated insert_after(ref) reverses insertion order — the
        'stacking' discipline fork children rely on."""
        ol = OrderList()
        ref = ol.insert_first()
        kids = [ol.insert_after(ref) for _ in range(5)]
        assert [n for n in ol] == [ref] + kids[::-1]
        ol.check_invariants()

    def test_insert_before_stacks(self):
        ol = OrderList()
        ref = ol.insert_first()
        kids = [ol.insert_before(ref) for _ in range(5)]
        assert [n for n in ol] == kids + [ref]
        ol.check_invariants()

    def test_move_after_keeps_identity(self):
        ol = OrderList()
        a = ol.insert_first()
        b = ol.insert_last()
        c = ol.insert_last()
        ol.move_after(a, c)
        assert [n for n in ol] == [b, c, a]
        assert OrderList.precedes(c, a)
        ol.check_invariants()

    def test_move_after_noop_cases(self):
        ol = OrderList()
        a = ol.insert_first()
        b = ol.insert_last()
        ol.move_after(b, a)           # already immediately after
        ol.move_after(a, a)           # self
        assert [n for n in ol] == [a, b]
        ol.check_invariants()

    def test_relabel_on_gap_exhaustion(self):
        """Hammering one gap must trigger relabels, never break order."""
        ol = OrderList()
        first = ol.insert_first()
        ol.insert_last()
        nodes = [first]
        for _ in range(200):
            nodes.append(ol.insert_after(nodes[-1]))
        assert ol.relabel_count > 0
        ol.check_invariants()
        assert [n for n in ol][:len(nodes)] == nodes

    def test_remove(self):
        ol = OrderList()
        a = ol.insert_first()
        b = ol.insert_last()
        c = ol.insert_last()
        ol.remove(b)
        assert [n for n in ol] == [a, c]
        ol.check_invariants()


# op stream: each element picks an operation + reference index (mod size)
ops = st.lists(st.tuples(st.sampled_from(
    ["first", "last", "after", "before", "move", "remove"]),
    st.integers(0, 10 ** 6)), min_size=1, max_size=120)


class TestAgainstListOracle:
    @given(ops)
    @settings(max_examples=60, deadline=None)
    def test_random_ops(self, stream):
        ol = OrderList()
        oracle = []           # nodes in oracle order
        for op, r in stream:
            if op == "first" or not oracle and op in ("after", "before",
                                                      "move", "remove"):
                oracle.insert(0, ol.insert_first())
            elif op == "last":
                oracle.append(ol.insert_last())
            elif op == "after":
                ref = oracle[r % len(oracle)]
                oracle.insert(oracle.index(ref) + 1, ol.insert_after(ref))
            elif op == "before":
                ref = oracle[r % len(oracle)]
                oracle.insert(oracle.index(ref), ol.insert_before(ref))
            elif op == "move" and len(oracle) >= 2:
                node = oracle[r % len(oracle)]
                ref = oracle[(r // 7) % len(oracle)]
                if node is not ref:
                    ol.move_after(node, ref)
                    oracle.remove(node)
                    oracle.insert(oracle.index(ref) + 1, node)
            elif op == "remove" and len(oracle) >= 2:
                node = oracle.pop(r % len(oracle))
                ol.remove(node)
            ol.check_invariants()
            assert [n for n in ol] == oracle

        # full pairwise order agreement with the oracle's index order
        rng = random.Random(42)
        idxs = range(len(oracle))
        sample = [(i, j) for i in idxs for j in idxs if i != j]
        if len(sample) > 400:
            sample = rng.sample(sample, 400)
        for i, j in sample:
            assert OrderList.precedes(oracle[i], oracle[j]) == (i < j)
