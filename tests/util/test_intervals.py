"""Unit tests for the interval algebra (repro.util.intervals)."""

import pytest

from repro.util.intervals import Interval, IntervalSet, coalesce


class TestInterval:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Interval(5, 5)
        with pytest.raises(ValueError):
            Interval(6, 5)

    def test_make_returns_none_for_empty(self):
        assert Interval.make(5, 5) is None
        assert Interval.make(3, 2) is None
        assert Interval.make(1, 2) == Interval(1, 2)

    def test_size(self):
        assert Interval(10, 25).size == 15

    def test_overlaps_half_open(self):
        assert Interval(0, 10).overlaps(Interval(9, 20))
        assert not Interval(0, 10).overlaps(Interval(10, 20))
        assert Interval(5, 6).overlaps(Interval(0, 100))

    def test_touches_includes_adjacency(self):
        assert Interval(0, 10).touches(Interval(10, 20))
        assert not Interval(0, 10).touches(Interval(11, 20))

    def test_contains_point(self):
        iv = Interval(4, 8)
        assert iv.contains(4)
        assert iv.contains(7)
        assert not iv.contains(8)
        assert not iv.contains(3)

    def test_covers(self):
        assert Interval(0, 10).covers(Interval(2, 8))
        assert Interval(0, 10).covers(Interval(0, 10))
        assert not Interval(0, 10).covers(Interval(2, 11))

    def test_intersect(self):
        assert Interval(0, 10).intersect(Interval(5, 15)) == Interval(5, 10)
        assert Interval(0, 10).intersect(Interval(10, 15)) is None

    def test_hull(self):
        assert Interval(0, 4).hull(Interval(10, 12)) == Interval(0, 12)

    def test_subtract_middle_splits(self):
        assert Interval(0, 10).subtract(Interval(3, 7)) == (
            Interval(0, 3), Interval(7, 10))

    def test_subtract_disjoint_identity(self):
        assert Interval(0, 10).subtract(Interval(20, 30)) == (Interval(0, 10),)

    def test_subtract_full_cover_empty(self):
        assert Interval(3, 7).subtract(Interval(0, 10)) == ()

    def test_subtract_edges(self):
        assert Interval(0, 10).subtract(Interval(0, 4)) == (Interval(4, 10),)
        assert Interval(0, 10).subtract(Interval(6, 10)) == (Interval(0, 6),)

    def test_shift(self):
        assert Interval(1, 3).shift(10) == Interval(11, 13)


class TestIntervalSet:
    def test_empty(self):
        s = IntervalSet()
        assert not s
        assert len(s) == 0
        assert s.total_bytes == 0
        assert s.span is None

    def test_add_coalesces_adjacent(self):
        s = IntervalSet()
        s.add(0, 10)
        s.add(10, 20)
        assert s.pairs() == [(0, 20)]

    def test_add_coalesces_overlap(self):
        s = IntervalSet()
        s.add(0, 10)
        s.add(5, 15)
        assert s.pairs() == [(0, 15)]

    def test_add_disjoint_keeps_sorted(self):
        s = IntervalSet()
        s.add(20, 30)
        s.add(0, 5)
        s.add(10, 12)
        assert s.pairs() == [(0, 5), (10, 12), (20, 30)]

    def test_add_bridging_merge(self):
        s = IntervalSet.from_pairs([(0, 5), (10, 15), (20, 25)])
        s.add(4, 21)
        assert s.pairs() == [(0, 25)]

    def test_add_empty_noop(self):
        s = IntervalSet.from_pairs([(0, 5)])
        s.add(7, 7)
        assert s.pairs() == [(0, 5)]

    def test_contains_point(self):
        s = IntervalSet.from_pairs([(0, 5), (10, 15)])
        assert s.contains_point(0)
        assert s.contains_point(14)
        assert not s.contains_point(5)
        assert not s.contains_point(9)

    def test_overlaps_range(self):
        s = IntervalSet.from_pairs([(10, 20)])
        assert s.overlaps_range(0, 11)
        assert s.overlaps_range(19, 30)
        assert not s.overlaps_range(0, 10)
        assert not s.overlaps_range(20, 30)

    def test_covers_range(self):
        s = IntervalSet.from_pairs([(0, 10), (20, 30)])
        assert s.covers_range(2, 8)
        assert s.covers_range(0, 10)
        assert not s.covers_range(5, 25)
        assert not s.covers_range(15, 18)

    def test_overlapping_listing(self):
        s = IntervalSet.from_pairs([(0, 5), (10, 15), (20, 25)])
        from repro.util.intervals import Interval as I
        assert s.overlapping(3, 22) == [I(0, 5), I(10, 15), I(20, 25)]
        assert s.overlapping(5, 10) == []

    def test_remove_middle(self):
        s = IntervalSet.from_pairs([(0, 10)])
        s.remove(3, 7)
        assert s.pairs() == [(0, 3), (7, 10)]

    def test_remove_across_members(self):
        s = IntervalSet.from_pairs([(0, 5), (10, 15), (20, 25)])
        s.remove(3, 22)
        assert s.pairs() == [(0, 3), (22, 25)]

    def test_remove_everything(self):
        s = IntervalSet.from_pairs([(0, 5), (10, 15)])
        s.remove(0, 100)
        assert s.pairs() == []

    def test_remove_nothing(self):
        s = IntervalSet.from_pairs([(0, 5)])
        s.remove(6, 9)
        assert s.pairs() == [(0, 5)]

    def test_union(self):
        a = IntervalSet.from_pairs([(0, 5), (10, 15)])
        b = IntervalSet.from_pairs([(4, 11), (20, 22)])
        assert a.union(b).pairs() == [(0, 15), (20, 22)]

    def test_intersection(self):
        a = IntervalSet.from_pairs([(0, 10), (20, 30)])
        b = IntervalSet.from_pairs([(5, 25)])
        assert a.intersection(b).pairs() == [(5, 10), (20, 25)]

    def test_intersection_empty(self):
        a = IntervalSet.from_pairs([(0, 5)])
        b = IntervalSet.from_pairs([(5, 10)])
        assert a.intersection(b).pairs() == []
        assert not a.intersects(b)

    def test_intersects_fast_path(self):
        a = IntervalSet.from_pairs([(0, 5), (100, 105)])
        b = IntervalSet.from_pairs([(104, 200)])
        assert a.intersects(b)

    def test_difference(self):
        a = IntervalSet.from_pairs([(0, 10)])
        b = IntervalSet.from_pairs([(2, 4), (6, 8)])
        assert a.difference(b).pairs() == [(0, 2), (4, 6), (8, 10)]

    def test_equality_is_canonical(self):
        a = IntervalSet.from_pairs([(0, 5), (5, 10)])
        b = IntervalSet.from_pairs([(0, 10)])
        assert a == b
        assert hash(a) == hash(b)

    def test_total_bytes(self):
        s = IntervalSet.from_pairs([(0, 5), (10, 12)])
        assert s.total_bytes == 7

    def test_span(self):
        s = IntervalSet.from_pairs([(5, 8), (100, 110)])
        assert s.span.lo == 5 and s.span.hi == 110

    def test_copy_is_independent(self):
        a = IntervalSet.from_pairs([(0, 5)])
        b = a.copy()
        b.add(10, 20)
        assert a.pairs() == [(0, 5)]

    def test_coalesce_helper(self):
        assert coalesce([(5, 8), (0, 5), (20, 21)]) == [(0, 8), (20, 21)]
