"""Tests for the small utilities: seeded RNG streams, tables, logging."""

import logging


from repro.util.log import enable_verbose, get_logger
from repro.util.rng import RngHub
from repro.util.tables import render_kv, render_table


class TestRngHub:
    def test_same_seed_same_stream(self):
        a = [RngHub(7).randint("x", 0, 1000) for _ in range(5)]
        b = [RngHub(7).randint("x", 0, 1000) for _ in range(5)]
        assert a == b

    def test_streams_reproducible_within_hub(self):
        h1, h2 = RngHub(3), RngHub(3)
        seq1 = [h1.randint("s", 0, 100) for _ in range(10)]
        seq2 = [h2.randint("s", 0, 100) for _ in range(10)]
        assert seq1 == seq2

    def test_named_streams_independent(self):
        hub = RngHub(0)
        a = [hub.randint("a", 0, 1 << 30) for _ in range(4)]
        hub2 = RngHub(0)
        _ = [hub2.randint("b", 0, 1 << 30) for _ in range(100)]  # drain b
        a2 = [hub2.randint("a", 0, 1 << 30) for _ in range(4)]
        assert a == a2          # stream 'a' unaffected by stream 'b' usage

    def test_different_seeds_differ(self):
        a = [RngHub(1).randint("x", 0, 1 << 30) for _ in range(4)]
        b = [RngHub(2).randint("x", 0, 1 << 30) for _ in range(4)]
        assert a != b

    def test_choice_in_range(self):
        hub = RngHub(0)
        for _ in range(50):
            assert 0 <= hub.choice("c", 7) < 7

    def test_shuffle_permutes(self):
        hub = RngHub(5)
        seq = list(range(20))
        orig = list(seq)
        hub.shuffle("sh", seq)
        assert sorted(seq) == orig
        assert seq != orig       # vanishingly unlikely to be identity

    def test_shuffle_deterministic(self):
        s1, s2 = list(range(10)), list(range(10))
        RngHub(9).shuffle("sh", s1)
        RngHub(9).shuffle("sh", s2)
        assert s1 == s2


class TestTables:
    def test_render_alignment(self):
        text = render_table(["col", "x"], [["a", 1], ["long-cell", 22]])
        lines = text.splitlines()
        assert len({line.index("|") for line in lines
                    if "|" in line and "-" not in line.split("|")[0]}) == 1

    def test_title_and_rule(self):
        text = render_table(["h"], [["v"]], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert set(text.splitlines()[1]) == {"="}

    def test_render_kv(self):
        text = render_kv([("key", 1), ("longer-key", "v")], title="t")
        assert "t" in text and "longer-key" in text
        # values aligned on the same column
        cols = [line.index(":") for line in text.splitlines() if ":" in line]
        assert len(set(cols)) == 1


class TestLog:
    def test_logger_hierarchy(self):
        child = get_logger("analysis")
        assert child.name == "repro.analysis"
        assert get_logger().name == "repro"

    def test_enable_verbose_idempotent(self):
        enable_verbose()
        n = len(logging.getLogger("repro").handlers)
        enable_verbose()
        assert len(logging.getLogger("repro").handlers) == n
