"""Tests for the bulk interval-tree construction paths (repro.util.itree).

``build_from_sorted`` / ``bulk_merge`` / ``coalesce_sorted_pairs`` back the
write-combining recorder's segment-close flush; their contract is exact
equivalence with a per-interval ``insert`` loop, which is used as the oracle
throughout.
"""

from hypothesis import given, settings, strategies as st

from repro.util.itree import (IntervalTree, _merge_sorted,
                              coalesce_sorted_pairs)


def inserted(pairs):
    t = IntervalTree()
    for lo, hi in pairs:
        t.insert(lo, hi)
    return t


raw_pairs = st.lists(st.tuples(st.integers(0, 500), st.integers(1, 40)),
                     max_size=60).map(
    lambda xs: [(lo, lo + n) for lo, n in xs])


def normalize(pairs):
    """Sorted disjoint non-adjacent pairs — build_from_sorted's precondition."""
    return coalesce_sorted_pairs(sorted(pairs))


class TestCoalesceSortedPairs:
    def test_empty(self):
        assert coalesce_sorted_pairs([]) == []

    def test_merges_overlap_and_adjacency(self):
        assert coalesce_sorted_pairs([(0, 4), (4, 8), (6, 10), (12, 14)]) \
            == [(0, 10), (12, 14)]

    def test_drops_empty_ranges(self):
        assert coalesce_sorted_pairs([(0, 0), (1, 3), (5, 5)]) == [(1, 3)]

    @given(raw_pairs)
    @settings(max_examples=80, deadline=None)
    def test_matches_insert_oracle(self, pairs):
        assert coalesce_sorted_pairs(sorted(pairs)) == inserted(pairs).pairs()


class TestBuildFromSorted:
    def test_empty(self):
        t = IntervalTree.build_from_sorted([])
        assert t.pairs() == [] and len(t) == 0 and t.total_bytes == 0

    @given(raw_pairs)
    @settings(max_examples=80, deadline=None)
    def test_matches_insert_oracle(self, pairs):
        canon = normalize(pairs)
        t = IntervalTree.build_from_sorted(canon)
        oracle = inserted(pairs)
        assert t.pairs() == oracle.pairs()
        assert len(t) == len(oracle)
        assert t.total_bytes == oracle.total_bytes
        t.check_invariants()

    @given(raw_pairs, st.tuples(st.integers(0, 520), st.integers(1, 30)))
    @settings(max_examples=60, deadline=None)
    def test_built_tree_still_mutable(self, pairs, extra):
        """A bulk-built tree must accept further inserts like any other."""
        lo, n = extra
        t = IntervalTree.build_from_sorted(normalize(pairs))
        t.insert(lo, lo + n)
        assert t.pairs() == inserted(pairs + [(lo, lo + n)]).pairs()
        t.check_invariants()


class TestBulkMerge:
    @given(raw_pairs, raw_pairs)
    @settings(max_examples=80, deadline=None)
    def test_matches_insert_oracle(self, base, batch):
        t = inserted(base)
        merged = t.bulk_merge(normalize(batch))
        assert merged.pairs() == inserted(base + batch).pairs()
        merged.check_invariants()

    def test_into_empty(self):
        t = IntervalTree()
        merged = t.bulk_merge([(0, 8), (16, 24)])
        assert merged.pairs() == [(0, 8), (16, 24)]

    @given(raw_pairs, raw_pairs)
    @settings(max_examples=60, deadline=None)
    def test_merge_sorted_feeds_coalesce(self, a, b):
        """_merge_sorted orders by lo (lo-ties in either source order);
        coalescing its output must equal coalescing a full sort."""
        ca, cb = normalize(a), normalize(b)
        merged = list(_merge_sorted(ca, cb))
        assert [p[0] for p in merged] == sorted(p[0] for p in merged)
        assert coalesce_sorted_pairs(merged) \
            == coalesce_sorted_pairs(sorted(ca + cb))
