"""Tests for the Cilk runtime, its Taskgrind shim, and SP-bags."""

import pytest

from repro.baselines.spbags import SpBagsTool
from repro.cilk.runtime import make_cilk_env
from repro.core.cilk_shim import attach_cilk
from repro.core.tool import TaskgrindTool
from repro.errors import RuntimeModelError, ToolError
from repro.machine.machine import Machine


def run_cilk(program, *, nworkers=4, serial_elision=False, tool=None,
             seed=0):
    machine = Machine(seed=seed)
    if isinstance(tool, TaskgrindTool):
        machine.add_tool(tool)
    elif isinstance(tool, SpBagsTool):
        machine.add_tool(tool)
    env = make_cilk_env(machine, nworkers=nworkers,
                        serial_elision=serial_elision)
    if isinstance(tool, TaskgrindTool):
        attach_cilk(tool, env)
    elif isinstance(tool, SpBagsTool):
        tool.attach_cilk(env)
    box = {}

    def main():
        with env.ctx.function("main", line=1):
            box["result"] = program(env)
    machine.run(main)
    return box.get("result"), machine


def fib_program(n):
    def program(env):
        def fib(frame, k):
            if k < 2:
                return k
            a = env.spawn(frame, fib, k - 1)
            b = fib(frame, k - 2)
            env.sync(frame)
            return a.result + b
        return env.run(fib, n)
    return program


class TestCilkRuntime:
    def test_fib_correct(self):
        result, _ = run_cilk(fib_program(10))
        assert result == 55

    def test_fib_serial_elision(self):
        result, _ = run_cilk(fib_program(10), serial_elision=True)
        assert result == 55

    def test_determinism_across_seeds(self):
        for seed in range(3):
            result, _ = run_cilk(fib_program(8), seed=seed)
            assert result == 21

    def test_work_spreads_across_workers(self):
        threads = set()

        def program(env):
            def leaf(frame):
                threads.add(env.machine.scheduler.current_id())
                env.ctx.compute(500)

            def root(frame):
                for _ in range(16):
                    env.spawn(frame, leaf)
                env.sync(frame)
            return env.run(root)

        run_cilk(program)
        assert len(threads) > 1

    def test_result_before_sync_rejected(self):
        def program(env):
            def root(frame):
                h = env.spawn(frame, lambda f: 42)
                return h.result           # no sync!
            return env.run(root)

        # one worker: the child stays queued, so the premature read is caught
        with pytest.raises(RuntimeModelError):
            run_cilk(program, nworkers=1)

    def test_implicit_sync_at_function_end(self):
        order = []

        def program(env):
            def child(frame):
                order.append("child")

            def root(frame):
                env.spawn(frame, child)
                order.append("root-return")
                # NO explicit sync: the implicit one must cover the child
            env.run(root)
            order.append("after-run")
        run_cilk(program)
        assert order.index("child") < order.index("after-run")


class TestCilkTaskgrind:
    def _racy(self, env):
        x = env.ctx.malloc(8, line=3)

        def child(frame):
            x.write(0, line=6)

        def root(frame):
            env.spawn(frame, child)
            x.write(0, line=9)           # concurrent with the child
            env.sync(frame)
        env.run(root)

    def _fixed(self, env):
        x = env.ctx.malloc(8, line=3)

        def child(frame):
            x.write(0, line=6)

        def root(frame):
            env.spawn(frame, child)
            env.sync(frame)
            x.write(0, line=9)           # after the sync: ordered
        env.run(root)

    def test_detects_spawn_continuation_race(self):
        tool = TaskgrindTool()
        run_cilk(self._racy, tool=tool)
        assert tool.finalize()

    def test_sync_orders(self):
        tool = TaskgrindTool()
        run_cilk(self._fixed, tool=tool)
        assert tool.finalize() == []

    def test_sibling_spawns_race(self):
        def program(env):
            x = env.ctx.malloc(8)

            def child(frame):
                x.write(0)

            def root(frame):
                env.spawn(frame, child)
                env.spawn(frame, child)
                env.sync(frame)
            env.run(root)

        tool = TaskgrindTool()
        run_cilk(program, tool=tool)
        assert tool.finalize()

    def test_fib_clean(self):
        tool = TaskgrindTool()
        result, _ = run_cilk(fib_program(8), tool=tool)
        assert result == 21
        assert tool.finalize() == []

    def test_detection_independent_of_schedule(self):
        """Segment analysis: the race is logical, any seed finds it."""
        for seed in range(3):
            tool = TaskgrindTool()
            run_cilk(self._racy, tool=tool, seed=seed)
            assert tool.finalize(), seed


class TestSpBags:
    def test_requires_serial_elision(self):
        tool = SpBagsTool()
        with pytest.raises(ToolError):
            run_cilk(fib_program(4), tool=tool, serial_elision=False)

    def test_detects_spawn_continuation_race(self):
        tool = SpBagsTool()
        run_cilk(self._racy_program(), tool=tool, serial_elision=True)
        assert tool.finalize()

    def _racy_program(self):
        def program(env):
            x = env.ctx.malloc(8)

            def child(frame):
                x.write(0)

            def root(frame):
                env.spawn(frame, child)
                x.write(0)
                env.sync(frame)
            env.run(root)
        return program

    def _fixed_program(self):
        def program(env):
            x = env.ctx.malloc(8)

            def child(frame):
                x.write(0)

            def root(frame):
                env.spawn(frame, child)
                env.sync(frame)
                x.write(0)
            env.run(root)
        return program

    def test_sync_suppresses(self):
        tool = SpBagsTool()
        run_cilk(self._fixed_program(), tool=tool, serial_elision=True)
        assert tool.finalize() == []

    def test_fib_clean(self):
        tool = SpBagsTool()
        result, _ = run_cilk(fib_program(8), tool=tool, serial_elision=True)
        assert result == 21
        assert tool.finalize() == []

    def test_read_write_race(self):
        def program(env):
            x = env.ctx.malloc(8)

            def reader(frame):
                x.read(0)

            def root(frame):
                env.spawn(frame, reader)
                x.write(0)
                env.sync(frame)
            env.run(root)

        tool = SpBagsTool()
        run_cilk(program, tool=tool, serial_elision=True)
        races = tool.finalize()
        assert races and races[0].kind in ("rw", "wr")

    def test_agrees_with_taskgrind_on_suite(self):
        """A2 ablation precondition: same verdicts on the common cases."""
        cases = [(self._racy_program(), True),
                 (self._fixed_program(), False),
                 (fib_program(6), False)]
        for program, racy in cases:
            sp = SpBagsTool()
            run_cilk(program, tool=sp, serial_elision=True)
            tg = TaskgrindTool()
            run_cilk(program, tool=tg)
            assert bool(sp.finalize()) == racy
            assert bool(tg.finalize()) == racy
