"""Tests for the synthetic workloads (fib / heat / n-queens) and their
behaviour under Taskgrind."""

import numpy as np
import pytest

from repro.core.tool import TaskgrindOptions, TaskgrindTool
from repro.machine.machine import Machine
from repro.openmp.api import make_env
from repro.workloads.synthetic import (NQUEENS_SOLUTIONS, fib_reference,
                                       heat_reference, omp_fib, omp_heat,
                                       omp_nqueens)


def run(workload, *, nthreads=4, seed=0, tool=None):
    machine = Machine(seed=seed)
    if tool is not None:
        machine.add_tool(tool)
    env = make_env(machine, nthreads=nthreads)
    if tool is not None:
        env.rt.ompt.register(tool.make_ompt_shim())
    box = {}

    def main():
        with env.ctx.function("main", line=1):
            box["result"] = workload(env)
    machine.run(main)
    return box["result"], machine


class TestFib:
    def test_matches_reference(self):
        result, _ = run(lambda env: omp_fib(env, 12))
        assert result == fib_reference(12) == 144

    def test_deterministic_across_seeds(self):
        for seed in range(3):
            result, _ = run(lambda env: omp_fib(env, 10), seed=seed)
            assert result == 55

    def test_clean_under_taskgrind(self):
        tool = TaskgrindTool(TaskgrindOptions(model_multithread_lockup=False))
        result, _ = run(lambda env: omp_fib(env, 9), tool=tool)
        assert result == 34
        assert tool.finalize() == []


class TestHeat:
    def test_matches_reference(self):
        result, _ = run(lambda env: omp_heat(env, n=64, steps=8))
        np.testing.assert_allclose(result, heat_reference(64, 8))

    def test_conserves_heat(self):
        result, _ = run(lambda env: omp_heat(env, n=32, steps=6))
        assert result.sum() == pytest.approx(100.0)

    def test_clean_under_taskgrind(self):
        tool = TaskgrindTool(TaskgrindOptions(model_multithread_lockup=False))
        run(lambda env: omp_heat(env, n=32, steps=4), tool=tool)
        assert tool.finalize() == []

    def test_racy_variant_detected(self):
        tool = TaskgrindTool(TaskgrindOptions(model_multithread_lockup=False))
        run(lambda env: omp_heat(env, n=32, steps=4, racy=True), tool=tool)
        assert tool.finalize()

    def test_racy_detected_single_thread(self):
        """The annotation keeps the logical graph visible when serialized."""
        tool = TaskgrindTool()
        run(lambda env: omp_heat(env, n=32, steps=4, racy=True),
            nthreads=1, tool=tool)
        assert tool.finalize()


class TestNQueens:
    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_counts(self, n):
        result, _ = run(lambda env: omp_nqueens(env, n))
        assert result == NQUEENS_SOLUTIONS[n]

    def test_clean_under_taskgrind(self):
        tool = TaskgrindTool(TaskgrindOptions(model_multithread_lockup=False))
        result, _ = run(lambda env: omp_nqueens(env, 5), tool=tool)
        assert result == 10
        assert tool.finalize() == []

    def test_racy_counter_detected(self):
        tool = TaskgrindTool(TaskgrindOptions(model_multithread_lockup=False))
        run(lambda env: omp_nqueens(env, 5, racy=True), tool=tool)
        assert tool.finalize()
