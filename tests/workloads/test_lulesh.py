"""Tests for the LULESH proxy: determinacy, racy schedule-dependence,
scaling, and the Table II / Fig 4 preconditions."""


from repro.machine.machine import Machine
from repro.openmp.api import make_env
from repro.workloads.lulesh import LuleshConfig, Mesh, run_lulesh


def run(cfg, nthreads=4, seed=0):
    machine = Machine(seed=seed)
    env = make_env(machine, nthreads=nthreads, source_file="lulesh.cc")
    mesh_box = {}

    def main():
        mesh_box["mesh"] = run_lulesh(env, cfg)
    machine.run(main)
    return machine, mesh_box["mesh"]


class TestMesh:
    def test_sizes(self):
        machine = Machine()
        env = make_env(machine, nthreads=1)

        def main():
            with env.ctx.function("main"):
                mesh = Mesh(env.ctx, 4)
                assert mesh.numelem == 64
                assert mesh.numnode == 125
                assert mesh.e.n == 64 and mesh.x.n == 125
        machine.run(main)

    def test_chunks_cover_domain(self):
        chunks = Mesh.chunks(100, 4)
        assert chunks[0][0] == 0 and chunks[-1][1] == 100
        covered = sum(hi - lo for lo, hi in chunks)
        assert covered == 100

    def test_chunks_handle_remainders(self):
        chunks = Mesh.chunks(10, 3)
        assert sum(hi - lo for lo, hi in chunks) == 10


class TestDeterminacy:
    def test_correct_version_schedule_independent(self):
        """Determinate: same field values for any schedule (seed)."""
        results = []
        for seed in range(3):
            _, mesh = run(LuleshConfig(s=4, iterations=3), seed=seed)
            results.append(mesh.origin_energy())
        assert len(set(results)) == 1

    def test_racy_version_runs_and_physics_flows(self):
        _, mesh = run(LuleshConfig(s=4, iterations=3, racy=True))
        assert mesh.origin_energy() > 0

    def test_energy_evolves_from_sedov_source(self):
        """The EOS runs: the origin energy moves off its initial value but
        stays physical (positive, same order of magnitude)."""
        _, mesh = run(LuleshConfig(s=4, iterations=4))
        e0 = 3.948746e7
        e = mesh.origin_energy()
        assert e > 0 and e != e0
        assert 0.5 * e0 < e < 2.0 * e0

    def test_single_thread_matches_multi_thread(self):
        _, m1 = run(LuleshConfig(s=4, iterations=2), nthreads=1)
        _, m4 = run(LuleshConfig(s=4, iterations=2), nthreads=4)
        assert m1.origin_energy() == m4.origin_energy()


class TestScaling:
    def test_time_grows_as_s_cubed(self):
        t = {}
        for s in (4, 8, 16, 32):
            machine, _ = run(LuleshConfig(s=s), nthreads=1)
            t[s] = machine.cost.seconds
        # at tiny sizes fixed per-task overhead flattens the curve; once the
        # field work dominates, doubling s multiplies time by ~8 (O(s^3))
        assert t[8] / t[4] > 3
        assert 5 < t[16] / t[8] < 11
        assert 5 < t[32] / t[16] < 11

    def test_memory_grows_with_s(self):
        m = {}
        for s in (8, 16):
            machine, _ = run(LuleshConfig(s=s), nthreads=1)
            m[s] = machine.memory_meter().heap_high_water
        assert m[16] > 4 * m[8]

    def test_parallel_speedup(self):
        m1, _ = run(LuleshConfig(s=16), nthreads=1)
        m4, _ = run(LuleshConfig(s=16), nthreads=4)
        assert m4.cost.seconds < m1.cost.seconds


class TestRaceStructure:
    def _tg_reports(self, racy, nthreads=1, seed=0):
        from repro.core.tool import TaskgrindTool
        machine = Machine(seed=seed)
        tool = TaskgrindTool()
        machine.add_tool(tool)
        env = make_env(machine, nthreads=nthreads, source_file="lulesh.cc")
        env.rt.ompt.register(tool.make_ompt_shim())
        machine.run(lambda: run_lulesh(env, LuleshConfig(s=8, racy=racy,
                                                         iterations=2)))
        return tool.finalize()

    def test_correct_version_no_reports(self):
        assert self._tg_reports(racy=False) == []

    def test_racy_version_reports(self):
        reports = self._tg_reports(racy=True)
        assert reports
        # the removed dependence is the kinematics halo: conflicts must be
        # on the velocity field, between kinematics reads and writes
        labels = {loc for r in reports
                  for loc in (r.s1.label(), r.s2.label())}
        assert any("lulesh" in lb for lb in labels)

    def test_racy_conflicts_touch_velocity_field(self):
        reports = self._tg_reports(racy=True)
        # conflicting ranges must fall inside a heap field allocation
        for r in reports:
            assert r.block_addr is not None

    def test_scratch_retained_under_taskgrind(self):
        from repro.core.tool import TaskgrindTool
        machine = Machine(seed=0)
        tool = TaskgrindTool()
        machine.add_tool(tool)
        env = make_env(machine, nthreads=1, source_file="lulesh.cc")
        env.rt.ompt.register(tool.make_ompt_shim())
        machine.run(lambda: run_lulesh(env, LuleshConfig(s=8)))
        # every per-iteration scratch allocation was retained (6x memory)
        assert machine.allocator.retained_bytes > 0
        assert machine.allocator.recycled_allocs == 0

    def test_scratch_recycled_without_tool(self):
        machine, _ = run(LuleshConfig(s=8), nthreads=1)
        assert machine.allocator.recycled_allocs > 0
        assert machine.allocator.retained_bytes == 0


class TestAnnotation:
    def test_tasks_annotated_by_default(self):
        from repro.openmp.ompt import OmptObserver

        seen = []

        class Spy(OmptObserver):
            def on_task_create(self, task, parent):
                seen.append(task.annotated_deferrable)

        machine = Machine()
        env = make_env(machine, nthreads=1, source_file="lulesh.cc")
        env.rt.ompt.register(Spy())
        machine.run(lambda: run_lulesh(env, LuleshConfig(s=4, iterations=1)))
        assert seen and all(seen)

    def test_annotation_can_be_disabled(self):
        machine, _ = run(LuleshConfig(s=4, iterations=1, annotate=False))
