"""Integration tests for the modeled baseline tools (Archer, TaskSanitizer,
ROMP) — each test pins one of the capability-matrix mechanisms that produce
the paper's Table I patterns."""

import pytest

from repro.baselines.archer import ArcherTool
from repro.baselines.romp import RompTool
from repro.baselines.tasksanitizer import TaskSanitizerTool
from repro.bench.programs import BenchProgram
from repro.errors import GuestCrash, NoCompilerSupport
from repro.machine.machine import Machine
from repro.openmp.api import make_env


def run_tool(tool, body, nthreads=4, seed=0):
    machine = Machine(seed=seed)
    machine.add_tool(tool)
    env = make_env(machine, nthreads=nthreads)
    env.rt.ompt.register(tool.make_ompt_shim())

    def main():
        with env.ctx.function("main", line=1):
            body(env)
    machine.run(main)
    return tool.finalize(), machine


def racy_pair(env):
    """Two unordered tasks writing the same heap word."""
    x = env.ctx.malloc(8)

    def make():
        env.task(lambda tv: x.write(0, line=8))
        env.task(lambda tv: x.write(0, line=11))
        env.taskwait()
    env.parallel_single(make)


def dep_ordered_pair(env):
    x = env.ctx.malloc(8)

    def make():
        env.task(lambda tv: x.write(0), depend={"out": [x]})
        env.task(lambda tv: x.write(0), depend={"inout": [x]})
        env.taskwait()
    env.parallel_single(make)


class TestArcher:
    def test_detects_cross_thread_race(self):
        hits = 0
        for seed in range(6):
            reports, _ = run_tool(ArcherTool(), racy_pair, seed=seed)
            hits += bool(reports)
        assert hits >= 1      # schedule-sensitive, must fire somewhere

    def test_honors_dependences(self):
        for seed in range(4):
            reports, _ = run_tool(ArcherTool(), dep_ordered_pair, seed=seed)
            assert reports == []

    def test_serialized_run_reports_nothing(self):
        """The paper's single-thread LULESH observation."""
        reports, _ = run_tool(ArcherTool(), racy_pair, nthreads=1)
        assert reports == []

    def test_misses_uninstrumented_accesses(self):
        def body(env):
            x = env.ctx.malloc(8)
            ctx = env.ctx

            def writer(tv):
                with ctx.function("vendor_blob", instrumented=False,
                                  library="libvendor.so"):
                    x.write(0)

            def make():
                env.task(writer)
                env.task(writer)
                env.taskwait()
            env.parallel_single(make)

        for seed in range(6):
            reports, _ = run_tool(ArcherTool(), body, seed=seed)
            assert reports == []       # the DBI motivation: Archer is blind

    def test_critical_establishes_hb(self):
        def body(env):
            x = env.ctx.malloc(8)

            def region(tid):
                with env.critical("c"):
                    x.write(0)
            env.parallel(region)

        for seed in range(4):
            reports, _ = run_tool(ArcherTool(), body, seed=seed)
            assert reports == []

    def test_taskwait_establishes_hb(self):
        def body(env):
            x = env.ctx.malloc(8)

            def make():
                env.task(lambda tv: x.write(0))
                env.taskwait()
                x.write(0)
            env.parallel_single(make)

        for seed in range(4):
            reports, _ = run_tool(ArcherTool(), body, seed=seed)
            assert reports == []

    def test_barrier_establishes_hb(self):
        def body(env):
            x = env.ctx.global_var("g", 8, elem=8)

            def region(tid):
                if env.thread_num() == 0:
                    x.write(0)
                env.barrier()
                if env.thread_num() == 1:
                    x.write(0)
            env.parallel(region)

        for seed in range(4):
            reports, _ = run_tool(ArcherTool(), body, seed=seed)
            assert reports == []

    def test_memory_scales_with_threads(self):
        t1 = ArcherTool()
        _, m1 = run_tool(t1, racy_pair, nthreads=1)
        t4 = ArcherTool()
        _, m4 = run_tool(t4, racy_pair, nthreads=4)
        assert m4.memory_meter().tool_bytes > m1.memory_meter().tool_bytes

    def test_gapped_mode_defaults_off(self):
        assert ArcherTool().dep_hb == "full"

    def test_gapped_mode_can_miss_dependence_hb(self):
        """With the libomp-annotation-gap model on, some stolen dependence
        edges lose their happens-before: a dep-ordered chain can FP."""
        def long_chain(env):
            x = env.ctx.malloc(8)
            tok = env.ctx.malloc(8)

            def make():
                for _ in range(40):
                    env.task(lambda tv: x.write(0),
                             depend={"inout": [tok]})
                env.taskwait()
            env.parallel_single(make)

        fp_seen = gap_seen = 0
        for seed in range(6):
            tool = ArcherTool(dep_hb="gapped")
            reports, _ = run_tool(tool, long_chain, seed=seed)
            gap_seen += tool.gapped_edges
            fp_seen += bool(reports)
        assert gap_seen > 0
        assert fp_seen > 0
        # and the ideal-OMPT default never FPs on the same program
        for seed in range(4):
            tool = ArcherTool()
            reports, _ = run_tool(tool, long_chain, seed=seed)
            assert reports == []


class TestTaskSanitizer:
    def test_compile_gate(self):
        prog = BenchProgram(name="p", racy=False, entry=lambda env: None,
                            min_clang=9)
        with pytest.raises(NoCompilerSupport):
            TaskSanitizerTool().compile_check(prog)
        ok = BenchProgram(name="p2", racy=False, entry=lambda env: None,
                          min_clang=8)
        TaskSanitizerTool().compile_check(ok)      # no raise

    def test_detects_logical_race_deterministically(self):
        """Segment-based: detection does not depend on the schedule."""
        for seed in range(4):
            reports, _ = run_tool(TaskSanitizerTool(), racy_pair, seed=seed)
            assert reports

    def test_undeferred_not_honored(self):
        """DRB122 mechanism."""
        def body(env):
            x = env.ctx.malloc(8)

            def make():
                env.task(lambda tv: x.write(0), if_=False)
                x.read(0)
            env.parallel_single(make)

        reports, _ = run_tool(TaskSanitizerTool(), body)
        assert reports

    def test_inoutset_not_honored(self):
        """Members of an inoutset are (wrongly) left unordered vs writers...
        actually: inoutset dependences are dropped entirely, so an
        out->inoutset chain looks parallel."""
        def body(env):
            x = env.ctx.malloc(8)

            def make():
                env.task(lambda tv: x.write(0), depend={"out": [x]})
                env.task(lambda tv: x.write(0), depend={"inoutset": [x]})
                env.taskwait()
            env.parallel_single(make)

        reports, _ = run_tool(TaskSanitizerTool(), body)
        assert reports                       # FP: the chain was ordered

    def test_global_dep_matching_orders_non_siblings(self):
        """DRB173 FN mechanism."""
        def body(env):
            x = env.ctx.malloc(8)

            def outer(tv):
                env.task(lambda tv2: x.write(0), depend={"out": [x]})
                env.taskwait()

            def make():
                env.task(lambda tv: x.write(0), depend={"out": [x]})
                env.task(outer)
                env.taskwait()
            env.parallel_single(make)

        reports, _ = run_tool(TaskSanitizerTool(), body)
        assert reports == []                 # FN: falsely ordered

    def test_allocation_epochs_defeat_recycling(self):
        def body(env):
            def task_body(tv):
                x = env.ctx.malloc(4)
                x.write(0)
                env.ctx.free(x)

            def make():
                env.task(task_body)
                env.task(task_body)
                env.taskwait()
            env.parallel_single(make, num_threads=1)

        reports, _ = run_tool(TaskSanitizerTool(), body, nthreads=1)
        assert reports == []

    def test_no_stack_suppression(self):
        """TMB 1003 mechanism: own-frame aliasing at one thread is an FP."""
        def body(env):
            def task_body(tv):
                z = env.ctx.stack_var("z", 8, elem=8)
                z.write(0)

            def make():
                env.task(task_body)
                env.task(task_body)
                env.taskwait()
            env.parallel_single(make, num_threads=1)

        reports, _ = run_tool(TaskSanitizerTool(), body, nthreads=1)
        assert reports


class TestRomp:
    def test_segv_gate(self):
        prog = BenchProgram(name="p", racy=False, entry=lambda env: None,
                            features=frozenset({"romp-segv"}))
        with pytest.raises(GuestCrash):
            RompTool().compile_check(prog)

    def test_detects_logical_race(self):
        reports, _ = run_tool(RompTool(), racy_pair)
        assert reports

    def test_coarse_stack_filter_hides_single_thread_races(self):
        """TMB 1001 @ 1 thread: ROMP FN, unlike Taskgrind."""
        def body(env):
            y = env.ctx.stack_var("y", 8, elem=8)

            def make():
                env.task(lambda tv: y.write(0))
                env.task(lambda tv: y.write(0))
                env.taskwait()
            env.parallel_single(make)

        reports, _ = run_tool(RompTool(), body, nthreads=1)
        assert reports == []

    def test_arena_descriptors_excluded(self):
        def body(env):
            k = env.ctx.stack_var("k", 8, elem=8)

            def make():
                for n in range(2):
                    k.write(0, n)
                    env.task(lambda tv: tv.private_value("k"),
                             firstprivate={"k": k})
                env.taskwait()
            env.parallel_single(make)

        reports, _ = run_tool(RompTool(), body)
        assert reports == []

    def test_history_blowup_crash(self):
        tool = RompTool(memory_cap=1 << 20)     # tiny cap

        def body(env):
            a = env.ctx.malloc(8 * 8192, elem=8)

            def make():
                env.task(lambda tv: a.write_range(0, 8192))
                env.taskwait()
            env.parallel_single(make)

        with pytest.raises(GuestCrash):
            run_tool(tool, body)

    def test_region_crash_hook(self):
        tool = RompTool(crash_after_regions=1)

        def body(env):
            env.parallel(lambda tid: None)

        with pytest.raises(GuestCrash):
            run_tool(tool, body)

    def test_memory_grows_with_access_volume(self):
        def body(env, n):
            a = env.ctx.malloc(8 * n, elem=8)

            def make():
                env.task(lambda tv: a.write_range(0, n))
                env.taskwait()
            env.parallel_single(make)

        small = RompTool()
        run_tool(small, lambda env: body(env, 64))
        big = RompTool()
        run_tool(big, lambda env: body(env, 4096))
        assert big.history_records > 10 * small.history_records
