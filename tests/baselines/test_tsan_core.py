"""Tests for the FastTrack-style TSan core."""


from repro.baselines.tsan import TsanCore


class TestRaceDetection:
    def test_ww_race_between_threads(self):
        core = TsanCore()
        core.on_write(0, 100, 108, None)
        core.on_write(1, 100, 108, None)
        assert len(core.races) == 1
        assert core.races[0].kind == "ww"

    def test_wr_race(self):
        core = TsanCore()
        core.on_write(0, 100, 108, None)
        core.on_read(1, 100, 108, None)
        assert core.races and core.races[0].kind == "wr"

    def test_rw_race(self):
        core = TsanCore()
        core.on_read(0, 100, 108, None)
        core.on_write(1, 100, 108, None)
        assert core.races and core.races[0].kind == "rw"

    def test_rr_no_race(self):
        core = TsanCore()
        core.on_read(0, 100, 108, None)
        core.on_read(1, 100, 108, None)
        assert core.races == []

    def test_same_thread_program_order(self):
        """Thread-centricity: one thread never races with itself."""
        core = TsanCore()
        core.on_write(0, 100, 108, None)
        core.on_read(0, 100, 108, None)
        core.on_write(0, 100, 108, None)
        assert core.races == []

    def test_release_acquire_suppresses(self):
        core = TsanCore()
        core.on_write(0, 100, 108, None)
        core.release(0, "m")
        core.acquire(1, "m")
        core.on_write(1, 100, 108, None)
        assert core.races == []

    def test_release_without_acquire_insufficient(self):
        core = TsanCore()
        core.on_write(0, 100, 108, None)
        core.release(0, "m")
        core.on_write(1, 100, 108, None)     # never acquired
        assert len(core.races) == 1

    def test_partial_overlap_detected(self):
        core = TsanCore()
        core.on_write(0, 100, 116, None)
        core.on_write(1, 108, 124, None)
        assert len(core.races) >= 1

    def test_disjoint_no_race(self):
        core = TsanCore()
        core.on_write(0, 100, 108, None)
        core.on_write(1, 108, 116, None)
        assert core.races == []

    def test_multiple_readers_then_writer(self):
        """The writer must race with *every* unordered reader."""
        core = TsanCore()
        core.on_read(0, 100, 108, None)
        core.on_read(1, 100, 108, None)
        core.on_write(2, 100, 108, None)
        assert len(core.races) == 2

    def test_write_clears_read_history(self):
        core = TsanCore()
        core.on_read(0, 100, 108, None)
        core.release(0, "m")
        core.acquire(1, "m")
        core.on_write(1, 100, 108, None)     # ordered after the read
        core.on_write(1, 100, 108, None)
        assert core.races == []


class TestFreeClearing:
    def test_recycling_no_false_positive(self):
        """TSan clears shadow on free: the Section IV-B pattern is clean."""
        core = TsanCore()
        core.on_write(0, 100, 108, None)
        core.on_free_range(100, 108)
        core.on_write(1, 100, 108, None)     # fresh allocation, same address
        assert core.races == []

    def test_partial_free(self):
        core = TsanCore()
        core.on_write(0, 100, 116, None)
        core.on_free_range(100, 108)
        core.on_write(1, 100, 108, None)     # freed part: clean
        assert core.races == []
        core.on_write(1, 108, 116, None)     # unfreed part: race
        assert len(core.races) == 1


class TestDeduplication:
    def test_unique_by_location_pair(self):
        from repro.machine.debuginfo import SourceLocation
        core = TsanCore()
        la = SourceLocation("a.c", 10)
        lb = SourceLocation("a.c", 20)
        for i in range(5):
            core.on_write(0, 100 + 64 * i, 108 + 64 * i, la)
            core.on_write(1, 100 + 64 * i, 108 + 64 * i, lb)
        assert len(core.races) == 5
        assert len(core.unique_races()) == 1

    def test_racy_ranges_survive_none_loc_dedup(self):
        """unique_races collapses None-location races onto one key;
        racy_ranges keeps every distinct address range."""
        core = TsanCore()
        for i in range(5):
            core.on_write(0, 100 + 64 * i, 108 + 64 * i, None)
            core.on_write(1, 100 + 64 * i, 108 + 64 * i, None)
        assert len(core.unique_races()) == 1
        assert core.racy_ranges() == [(100 + 64 * i, 108 + 64 * i)
                                      for i in range(5)]

    def test_racy_ranges_dedup_repeats(self):
        core = TsanCore()
        core.on_write(0, 100, 108, None)
        core.on_write(1, 100, 108, None)
        core.on_write(2, 100, 108, None)     # same range, new pair
        assert len(core.races) >= 2
        assert core.racy_ranges() == [(100, 108)]

    def test_memory_accounting(self):
        core = TsanCore()
        core.on_write(0, 0, 4096, None)
        assert core.memory_bytes(shadow_per_app_byte=4) >= 4 * 4096
