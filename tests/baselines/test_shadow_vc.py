"""Tests for the shadow interval map and vector clocks."""

from hypothesis import given, settings, strategies as st

from repro.baselines.shadow import IntervalMap
from repro.baselines.vector_clock import SyncVar, VectorClock


class TestIntervalMap:
    def test_empty(self):
        m = IntervalMap()
        assert len(m) == 0
        assert m.get_point(5) is None
        assert m.overlaps(0, 100) == []

    def test_set_and_get(self):
        m = IntervalMap()
        m.update(10, 20, lambda _: "a")
        assert m.get_point(10) == "a"
        assert m.get_point(19) == "a"
        assert m.get_point(20) is None

    def test_partial_overwrite_splits(self):
        m = IntervalMap()
        m.update(0, 30, lambda _: "a")
        m.update(10, 20, lambda _: "b")
        assert m.get_point(5) == "a"
        assert m.get_point(15) == "b"
        assert m.get_point(25) == "a"
        assert len(m) == 3

    def test_update_sees_old_values(self):
        m = IntervalMap()
        m.update(0, 10, lambda _: 1)
        m.update(5, 15, lambda v: (v or 0) + 1)
        assert m.get_point(2) == 1
        assert m.get_point(7) == 2
        assert m.get_point(12) == 1

    def test_gap_handling(self):
        m = IntervalMap()
        m.update(0, 5, lambda _: "x")
        m.update(10, 15, lambda _: "x")
        seen = []
        m.update(0, 15, lambda v: seen.append(v) or "y")
        assert None in seen                 # the gap [5,10) was offered
        assert m.get_point(7) == "y"

    def test_remove_via_none(self):
        m = IntervalMap()
        m.update(0, 20, lambda _: "a")
        m.clear_range(5, 15)
        assert m.get_point(2) == "a"
        assert m.get_point(10) is None
        assert m.get_point(17) == "a"

    def test_overlaps_listing(self):
        m = IntervalMap()
        m.update(0, 5, lambda _: 1)
        m.update(10, 15, lambda _: 2)
        hits = m.overlaps(3, 12)
        assert [(lo, hi) for lo, hi, _v in hits] == [(0, 5), (10, 15)]

    def test_covered_bytes(self):
        m = IntervalMap()
        m.update(0, 8, lambda _: 1)
        m.update(16, 24, lambda _: 1)
        assert m.covered_bytes == 16

    @given(st.lists(st.tuples(st.integers(0, 200), st.integers(1, 40),
                              st.integers(0, 5)), max_size=40))
    @settings(max_examples=150, deadline=None)
    def test_property_matches_dict_oracle(self, ops):
        m = IntervalMap()
        oracle = {}
        for lo, sz, val in ops:
            hi = lo + sz
            m.update(lo, hi, lambda _v, val=val: val)
            for a in range(lo, hi):
                oracle[a] = val
        for a in range(0, 250):
            assert m.get_point(a) == oracle.get(a), a
        # disjointness + sortedness invariants
        entries = list(m)
        for (l1, h1, _), (l2, h2, _) in zip(entries, entries[1:]):
            assert h1 <= l2


class TestVectorClock:
    def test_tick_and_get(self):
        vc = VectorClock()
        assert vc.get(3) == 0
        assert vc.tick(3) == 1
        assert vc.tick(3) == 2
        assert vc.get(3) == 2

    def test_join_is_pointwise_max(self):
        a = VectorClock({0: 5, 1: 1})
        b = VectorClock({1: 7, 2: 2})
        a.join(b)
        assert a.get(0) == 5 and a.get(1) == 7 and a.get(2) == 2

    def test_dominates_epoch(self):
        vc = VectorClock({0: 5})
        assert vc.dominates_epoch((0, 5))
        assert vc.dominates_epoch((0, 3))
        assert not vc.dominates_epoch((0, 6))
        assert not vc.dominates_epoch((1, 1))

    def test_copy_independent(self):
        a = VectorClock({0: 1})
        b = a.copy()
        b.tick(0)
        assert a.get(0) == 1

    def test_release_acquire_transfers_clock(self):
        a, b = VectorClock(), VectorClock()
        a.tick(0)
        sv = SyncVar()
        sv.release(a)
        sv.acquire(b)
        assert b.dominates_epoch((0, 1))

    def test_release_acquire_chain(self):
        """HB transitivity through two sync vars."""
        t0, t1, t2 = VectorClock(), VectorClock(), VectorClock()
        t0.tick(0)
        m1, m2 = SyncVar(), SyncVar()
        m1.release(t0)
        m1.acquire(t1)
        t1.tick(1)
        m2.release(t1)
        m2.acquire(t2)
        assert t2.dominates_epoch((0, 1))
        assert t2.dominates_epoch((1, 1))
