"""Smoke tests: every example script must run to completion.

Examples are the package's living documentation — each one doubles as an
integration test of the public API paths it demonstrates (the internal
``assert``s inside the examples validate their claims).
"""

import pathlib
import runpy

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob(
        "*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} produced no output"


def test_all_examples_discovered():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "porting_assistant", "compare_tools",
            "lulesh_demo", "error_reporting", "cilk_fib", "binary_blob",
            "offline_analysis"} <= names
