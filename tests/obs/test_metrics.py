"""Tests for the observability layer (repro.obs.metrics).

Three groups:

* instrument semantics — counters, gauges, histograms;
* phase timers — nesting, re-entrancy, exception safety, wall vs virtual
  time (both clocks injectable for determinism);
* the stable key contract — the stats documents the CI perf gate and the
  offline smoke job parse, produced by a real instrumented run.
"""

import json

import pytest

from repro.bench import drb
from repro.bench.perf import compare_to_baseline
from repro.bench.runner import run_benchmark
from repro.core.trace import analyze_trace_with_stats, save_trace
from repro.obs.metrics import MetricsRegistry, get_registry


# ---------------------------------------------------------------------------
# instruments
# ---------------------------------------------------------------------------

class TestCounter:
    def test_starts_at_zero_and_increments(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_same_name_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_reset_preserves_identity(self):
        # hot paths prebind counters at import time; reset() must zero the
        # value without replacing the object or the binding goes stale
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc(3)
        reg.reset()
        assert c.value == 0
        assert reg.counter("x") is c


class TestGauge:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        g = reg.gauge("mode")
        g.set(3)
        g.set(7)
        assert g.value == 7
        assert reg.snapshot()["gauges"]["mode"] == 7


class TestHistogram:
    def test_summary_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("sizes")
        for v in (1, 2, 4, 9):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 16
        assert h.min == 1
        assert h.max == 9
        assert h.mean == 4.0

    def test_power_of_two_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("sizes")
        # bucket k holds 2**(k-1) < v <= 2**k; bucket 0 holds v <= 1
        for v in (1, 2, 3, 4, 5, 8, 9):
            h.observe(v)
        d = h.as_dict()
        assert d["buckets"] == {"0": 1,   # 1
                                "1": 1,   # 2
                                "2": 2,   # 3, 4
                                "3": 2,   # 5, 8
                                "4": 1}   # 9

    def test_empty_histogram_snapshot(self):
        reg = MetricsRegistry()
        d = reg.histogram("empty").as_dict()
        assert d["count"] == 0
        assert d["min"] is None and d["max"] is None
        assert d["mean"] == 0.0


# ---------------------------------------------------------------------------
# phase timers
# ---------------------------------------------------------------------------

class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make_timed_registry():
    wall, vclock = FakeClock(), FakeClock()
    reg = MetricsRegistry(wallclock=wall)
    reg.set_vclock(vclock, ops_per_second=100.0)
    return reg, wall, vclock


class TestPhaseTimers:
    def test_wall_and_virtual_time(self):
        reg, wall, vclock = make_timed_registry()
        with reg.phase("record"):
            wall.advance(2.0)
            vclock.advance(500.0)
        p = reg.snapshot()["phases"]["record"]
        assert p["count"] == 1
        assert p["wall_s"] == 2.0
        assert p["vtime_ops"] == 500.0
        assert p["vtime_s"] == 5.0      # 500 ops at 100 ops/s

    def test_nested_phases_record_independently(self):
        reg, wall, _ = make_timed_registry()
        with reg.phase("analysis"):
            wall.advance(1.0)
            with reg.phase("analysis.pairs"):
                wall.advance(3.0)
            wall.advance(1.0)
        phases = reg.snapshot()["phases"]
        assert phases["analysis"]["wall_s"] == 5.0       # includes the child
        assert phases["analysis.pairs"]["wall_s"] == 3.0

    def test_reentrant_phase_counts_but_books_once(self):
        # a recursive phase must not double-book elapsed time
        reg, wall, _ = make_timed_registry()
        with reg.phase("suppress"):
            wall.advance(1.0)
            with reg.phase("suppress"):
                wall.advance(2.0)
            wall.advance(1.0)
        p = reg.snapshot()["phases"]["suppress"]
        assert p["count"] == 2
        assert p["wall_s"] == 4.0

    def test_exception_still_records_elapsed(self):
        reg, wall, _ = make_timed_registry()
        with pytest.raises(ValueError):
            with reg.phase("finalize"):
                wall.advance(7.0)
                raise ValueError("boom")
        p = reg.snapshot()["phases"]["finalize"]
        assert p["wall_s"] == 7.0
        # and the active-phase stack unwound: a fresh phase books normally
        with reg.phase("finalize"):
            wall.advance(1.0)
        assert reg.snapshot()["phases"]["finalize"]["wall_s"] == 8.0

    def test_no_vclock_reports_zero_virtual_time(self):
        wall = FakeClock()
        reg = MetricsRegistry(wallclock=wall)
        with reg.phase("offline"):
            wall.advance(1.0)
        p = reg.snapshot()["phases"]["offline"]
        assert p["vtime_ops"] == 0.0
        assert p["vtime_s"] == 0.0      # key always present (CI contract)

    def test_render_smoke(self):
        reg, wall, vclock = make_timed_registry()
        with reg.phase("record"):
            wall.advance(1.0)
            vclock.advance(50.0)
        reg.counter("record.wc_hits").inc(3)
        text = reg.render()
        assert "record" in text
        assert "record.wc_hits" in text


# ---------------------------------------------------------------------------
# the stable-key contract (what CI parses)
# ---------------------------------------------------------------------------

RACY = "027-taskdependmissing-orig"


def run_racy():
    get_registry().reset()
    return run_benchmark(drb.by_name(RACY), "taskgrind", nthreads=4, seed=0,
                         keep_machine=True)


class TestStatsDocuments:
    def test_tool_stats_keys(self):
        result = run_racy()
        doc = result.stats
        assert doc["schema"] == "taskgrind-stats/1"
        rec = doc["record"]
        for key in ("fast_path", "recorded_accesses", "filtered_accesses",
                    "fast_accesses", "legacy_accesses", "hub"):
            assert key in rec, f"missing record.{key}"
        assert rec["recorded_accesses"] > 0
        assert rec["fast_accesses"] + rec["legacy_accesses"] \
            == rec["recorded_accesses"]
        assert doc["virtual"]["makespan_ops"] > 0
        assert doc["virtual"]["seconds"] > 0
        graph = doc["graph"]
        for key in ("segments", "edges", "hb_mode", "queries", "dp_rebuilds"):
            assert key in graph, f"missing graph.{key}"
        assert doc["analysis"]["mode"] == "indexed"
        assert doc["analysis"]["reports"] == result.report_count

    def test_suppression_classes_all_present(self):
        # Section IV's four suppression classes each have a counter
        supp = run_racy().stats["suppress"]
        for key in ("ignore_list", "recycling_retained_blocks", "tls",
                    "stack", "survived", "fully_suppressed_pairs",
                    "file_suppressed"):
            assert key in supp, f"missing suppress.{key}"
        # free() is replaced with a no-op, so DRB heap blocks are retained
        assert supp["recycling_retained_blocks"] >= 0

    def test_registry_phases_cover_pipeline(self):
        run_racy()
        phases = get_registry().snapshot()["phases"]
        for name in ("record", "finalize", "analysis", "suppress", "report"):
            assert name in phases, f"missing phase {name}"
            assert phases[name]["count"] >= 1
        # the record phase wraps the instrumented run: simulated time moved
        assert phases["record"]["vtime_ops"] > 0

    def test_snapshot_is_json_serializable(self):
        run_racy()
        json.dumps(get_registry().snapshot())

    def test_trace_embeds_stats_and_offline_reexposes_them(self, tmp_path):
        result = run_racy()
        path = str(tmp_path / "trace.json")
        save_trace(result.tool_obj, result.machine, path)
        with open(path) as fh:
            embedded = next(json.loads(line)["payload"] for line in fh
                            if json.loads(line)["kind"] == "stats")
        assert embedded["schema"] == "taskgrind-stats/1"

        reports, stats = analyze_trace_with_stats(path)
        assert stats["schema"] == "taskgrind-offline-stats/1"
        assert stats["record_run"]["virtual"]["makespan_ops"] \
            == embedded["virtual"]["makespan_ops"]
        assert stats["analysis"]["reports"] == len(reports) > 0
        for phase in ("offline", "offline.load", "analysis", "suppress",
                      "report"):
            assert phase in stats["phases"], f"missing phase {phase}"
            assert "vtime_s" in stats["phases"][phase]


# ---------------------------------------------------------------------------
# the perf-gate comparison (pure function, no timing)
# ---------------------------------------------------------------------------

def doc(**speedups):
    return {"workloads": {wl: {"combined_speedup": s}
                          for wl, s in speedups.items()}}


class TestPerfGate:
    def test_passes_within_tolerance(self):
        ok, lines = compare_to_baseline(doc(fib=1.5, heat=2.0),
                                        doc(fib=2.0, heat=2.2),
                                        tolerance=0.4)
        assert ok
        assert len(lines) == 2

    def test_fails_beyond_tolerance(self):
        ok, lines = compare_to_baseline(doc(fib=1.0), doc(fib=2.0),
                                        tolerance=0.4)
        assert not ok
        assert any("REGRESSION" in line for line in lines)

    def test_only_common_workloads_compared(self):
        # the quick CI preset skips LULESH; a baseline that has it must not
        # fail the gate on the missing workload
        ok, lines = compare_to_baseline(doc(fib=2.0),
                                        doc(fib=2.0, lulesh=3.0),
                                        tolerance=0.4)
        assert ok
        assert len(lines) == 1

    def test_no_common_workloads_fails(self):
        ok, _ = compare_to_baseline(doc(fib=2.0), doc(heat=2.0),
                                    tolerance=0.4)
        assert not ok

    def test_improvement_always_passes(self):
        ok, _ = compare_to_baseline(doc(fib=9.0), doc(fib=2.0), tolerance=0.0)
        assert ok

    def test_failure_names_the_breaching_workload_and_phase(self):
        ok, lines = compare_to_baseline(doc(fib=1.0, heat=2.2),
                                        doc(fib=2.0, heat=2.0),
                                        tolerance=0.4)
        assert not ok
        assert lines[-1] == "breached tolerance: fib/combined"

    def test_record_sync_speedup_is_gated(self):
        base = doc(heat=2.0)
        base["workloads"]["heat"]["record_sync"] = {"speedup": 10.0}
        fresh = doc(heat=2.0)
        fresh["workloads"]["heat"]["record_sync"] = {"speedup": 1.0}
        ok, lines = compare_to_baseline(fresh, base, tolerance=0.4)
        assert not ok
        assert "heat/record_sync" in lines[-1]

    def test_fresh_doc_missing_a_gated_phase_fails(self):
        base = doc(heat=2.0)
        base["workloads"]["heat"]["analyze"] = {"speedup": 2.0}
        ok, lines = compare_to_baseline(doc(heat=2.0), base, tolerance=0.4)
        assert not ok
        assert "heat/analyze" in lines[-1]


# ---------------------------------------------------------------------------
# percentile estimation from power-of-two buckets
# ---------------------------------------------------------------------------

class TestPercentiles:
    def test_empty_histogram_has_no_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        assert h.percentile(0.5) is None
        d = h.as_dict()
        assert d["p50"] is None and d["p95"] is None

    def test_single_value_percentiles_clamp_to_it(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.observe(7)
        # one sample in bucket (4, 8]: every quantile is clamped to min=max=7
        assert h.percentile(0.5) == 7
        assert h.percentile(0.95) == 7

    def test_p50_p95_order_and_bucket_accuracy(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in range(1, 101):
            h.observe(v)
        p50, p95 = h.percentile(0.5), h.percentile(0.95)
        assert p50 is not None and p95 is not None
        assert p50 <= p95 <= 100
        # power-of-two sketch: the estimate lands in the right bucket
        assert 32 < p50 <= 64          # true median 50 lives in (32, 64]
        assert 64 < p95 <= 100         # true p95 95 lives in (64, 128]

    def test_as_dict_keeps_bucket_keys_stable(self):
        # the CI smoke test parses buckets; adding p50/p95 must not disturb it
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.observe(3)
        d = h.as_dict()
        assert d["buckets"] == {"2": 1}
        assert set(d) == {"count", "sum", "min", "max", "mean",
                          "p50", "p95", "buckets"}

    def test_render_shows_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("batch")
        for v in (1, 2, 4, 8):
            h.observe(v)
        out = reg.render()
        assert "p50" in out and "p95" in out and "batch" in out


# ---------------------------------------------------------------------------
# per-run scoping (mark/delta): back-to-back runs must not leak state
# ---------------------------------------------------------------------------

class TestRunScoping:
    def test_mark_delta_isolates_counter_activity(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc(10)
        base = reg.mark()
        c.inc(3)
        delta = reg.delta_since(base)
        assert delta["counters"]["x"] == 3

    def test_delta_drops_untouched_instruments(self):
        reg = MetricsRegistry()
        reg.counter("quiet").inc(5)
        reg.histogram("hquiet").observe(1)
        base = reg.mark()
        delta = reg.delta_since(base)
        assert "quiet" not in delta["counters"]
        assert "hquiet" not in delta["histograms"]

    def test_delta_histograms_and_phases(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.observe(2)
        with reg.phase("p"):
            pass
        base = reg.mark()
        h.observe(4)
        h.observe(4)
        with reg.phase("p"):
            pass
        delta = reg.delta_since(base)
        assert delta["histograms"]["h"]["count"] == 2
        assert delta["histograms"]["h"]["sum"] == 8.0
        assert delta["histograms"]["h"]["buckets"] == {"2": 2}
        assert delta["phases"]["p"]["count"] == 1

    def test_two_sequential_runs_report_independent_registry_stats(self):
        # regression: process-wide registry state used to leak into the
        # second run's stats document (cumulative counters/phases)
        prog = next(p for p in drb.REGISTRY
                    if p.name == "027-taskdependmissing-orig")
        r1 = run_benchmark(prog, "taskgrind")
        r2 = run_benchmark(prog, "taskgrind")
        reg1, reg2 = r1.stats["registry"], r2.stats["registry"]
        # identical runs: the per-run deltas must match, not accumulate
        assert reg1["counters"] == reg2["counters"]
        assert reg1["phases"]["finalize"]["count"] == 1
        assert reg2["phases"]["finalize"]["count"] == 1
        h1 = reg1["histograms"].get("record.flush_batch_ranges")
        h2 = reg2["histograms"].get("record.flush_batch_ranges")
        assert (h1 is None) == (h2 is None)
        if h1 is not None:
            assert h1["count"] == h2["count"]
            assert h1["buckets"] == h2["buckets"]

    def test_two_sequential_offline_analyses_scoped(self, tmp_path):
        prog = next(p for p in drb.REGISTRY
                    if p.name == "027-taskdependmissing-orig")
        result = run_benchmark(prog, "taskgrind", keep_machine=True)
        path = str(tmp_path / "t.json")
        save_trace(result.tool_obj, result.machine, path)
        _, s1 = analyze_trace_with_stats(path)
        _, s2 = analyze_trace_with_stats(path)
        assert s1["phases"]["offline"]["count"] == 1
        assert s2["phases"]["offline"]["count"] == 1
        assert s1["phases"]["offline.load"]["count"] == 1
        assert s2["phases"]["offline.load"]["count"] == 1


# ---------------------------------------------------------------------------
# Prometheus text exposition (--stats=prom)
# ---------------------------------------------------------------------------

class TestPromExposition:
    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prom() == ""

    def test_counters_and_numeric_gauges(self):
        reg = MetricsRegistry()
        reg.counter("record.fast").inc(7)
        reg.gauge("graph.segments").set(42)
        text = reg.render_prom()
        assert "# TYPE taskgrind_record_fast_total counter" in text
        assert "taskgrind_record_fast_total 7" in text
        assert "# TYPE taskgrind_graph_segments gauge" in text
        assert "taskgrind_graph_segments 42" in text
        assert text.endswith("\n")

    def test_non_numeric_gauge_becomes_info(self):
        reg = MetricsRegistry()
        reg.gauge("analysis.kernel").set("numpy")
        text = reg.render_prom()
        assert 'taskgrind_analysis_kernel_info{value="numpy"} 1' in text

    def test_name_sanitization(self):
        reg = MetricsRegistry()
        reg.counter("vex.sb-hit/miss").inc()
        text = reg.render_prom()
        assert "taskgrind_vex_sb_hit_miss_total 1" in text

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("accesses.size")
        h.observe(1)      # bucket 2^0
        h.observe(2)      # bucket 2^1
        h.observe(2)
        text = reg.render_prom()
        assert "# TYPE taskgrind_accesses_size histogram" in text
        # cumulative: the le="2.0" bucket includes the le="1.0" count
        assert 'taskgrind_accesses_size_bucket{le="1.0"} 1' in text
        assert 'taskgrind_accesses_size_bucket{le="2.0"} 3' in text
        assert 'taskgrind_accesses_size_bucket{le="+Inf"} 3' in text
        assert "taskgrind_accesses_size_count 3" in text
        assert "taskgrind_accesses_size_sum 5" in text

    def test_phase_families_labeled(self):
        reg = MetricsRegistry(wallclock=iter([0.0, 1.5]).__next__)
        with reg.phase("analysis"):
            pass
        text = reg.render_prom()
        assert ('taskgrind_phase_runs_total{phase="analysis"} 1'
                in text)
        assert ('taskgrind_phase_wall_seconds_total{phase="analysis"} 1.5'
                in text)
        assert "taskgrind_phase_vtime_ops_total" in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.gauge("path").set('a"b\\c')
        text = reg.render_prom()
        assert 'value="a\\"b\\\\c"' in text

    def test_real_run_parses_line_by_line(self):
        """Every non-comment line is `name{labels}? value` with a numeric
        value — the shape a Prometheus scraper requires."""
        reg = get_registry()
        reg.reset()
        for p in drb.REGISTRY:
            if p.name == "072-taskdep1-orig":
                run_benchmark(p, "taskgrind", nthreads=2, seed=0)
                break
        text = reg.render_prom()
        reg.reset()
        assert text
        for line in text.rstrip("\n").splitlines():
            if line.startswith("#"):
                assert line.startswith("# TYPE taskgrind_")
                continue
            name, value = line.rsplit(" ", 1)
            assert name.startswith("taskgrind_")
            float(value)            # must parse
