"""Tests for the overhead-attribution profiler (repro.obs.prof/profdoc).

Five groups:

* profiler unit semantics — disabled no-op, hint consumption, frame
  fallback chain, folded rendering;
* exactness + determinism — bucket sums equal ``CostModel.vtime_ops``
  bit-for-bit, and the same program+seed yields byte-identical folded
  output across runs;
* mode agreement — ``record_mode="sync"`` vs full recording agree on
  every non-access bucket, and an elision before/after pair names the
  elided access bucket as the top diff delta;
* the ``taskgrind-profile/1`` document — round-trip, strict corruption
  detection (CRC, seq, truncation), and the tracecheck CLI integration;
* CLI wiring — ``repro profile run/diff/show/check`` and the perf gate's
  bucket blaming.
"""

import json

import pytest

from repro.bench.runner import run_benchmark
from repro.bench.synth import REGISTRY as SYNTH
from repro.core.tool import TaskgrindOptions
from repro.errors import (ProfileCorruptionError, ProfileError,
                          ProfileFormatError)
from repro.machine.machine import Machine
from repro.obs import profdoc
from repro.obs.prof import NO_FRAME, Profiler, format_ops, get_profiler
from repro.obs.profdoc import (diff_profiles, load_profile, save_profile,
                               top_regressing_class, validate_profile_doc)


def program(name):
    for p in SYNTH:
        if p.name == name:
            return p
    raise LookupError(name)


@pytest.fixture
def prof():
    """The process singleton, disabled+reset after the test (the hooks
    prebind it at import time, same as the tracer)."""
    p = get_profiler()
    yield p
    p.disable()
    p.reset()


def profiled_run(name, *, seed=0, record_mode="full", elide=True):
    """Run one synth program with the profiler armed; return the profiler
    still holding that run's buckets (caller snapshots before reuse)."""
    p = get_profiler()
    p.enable()
    options = TaskgrindOptions(record_mode=record_mode, elide_sites=elide)
    result = run_benchmark(program(name), "taskgrind", nthreads=4,
                           seed=seed, taskgrind_options=options)
    p.disable()
    return p, result


# ---------------------------------------------------------------------------
# profiler unit semantics
# ---------------------------------------------------------------------------

class TestProfilerUnit:
    def test_disabled_by_default_and_empty(self):
        p = Profiler()
        assert not p.enabled
        assert len(p) == 0
        assert p.folded() == ""

    def test_enable_drops_prior_state(self):
        p = Profiler()
        p.enable()
        p.charge(0, "compute", 10.0, frame="f")
        p.count("hb.query.label")
        assert len(p) == 2
        p.enable()
        assert len(p) == 0
        assert p.total_ops == 0.0

    def test_charge_accumulates_per_key(self):
        p = Profiler()
        p.enable()
        p.charge(0, "compute", 10.0, frame="main")
        p.charge(0, "compute", 5.0, frame="main")
        p.charge(1, "compute", 7.0, frame="main")
        assert p.vtime_cells() == [(0, "compute", "main", 15.0),
                                   (1, "compute", "main", 7.0)]
        assert p.total_ops == 22.0
        assert p.class_totals() == {"compute": 22.0}
        assert p.thread_class_totals(1) == {"compute": 7.0}

    def test_access_hint_is_consumed_once(self):
        p = Profiler()
        p.enable()
        p.hint_access("elide.noop")
        assert p.take_access_hint("record.access") == "elide.noop"
        # the hint is one-shot: the next charge sees the default again
        assert p.take_access_hint("record.access") == "record.access"

    def test_frame_fallback_chain(self):
        p = Profiler()
        p.enable()
        assert p.frame_for(3) == "t3"
        p.bind_ancestry_provider(lambda tid: f"task:{tid}")
        assert p.frame_for(3) == "task:3"
        p.bind_frame_provider(lambda tid: None)   # no shadow stack yet
        assert p.frame_for(3) == "task:3"
        p.bind_frame_provider(lambda tid: "main;leaf")
        assert p.frame_for(3) == "main;leaf"

    def test_folded_is_sorted_and_integral(self):
        p = Profiler()
        p.enable()
        p.charge(1, "sync", 2.0, frame="b")
        p.charge(0, "compute", 10.0, frame="a")
        assert p.folded() == "t0;a;compute 10\nt1;b;sync 2\n"

    def test_format_ops(self):
        assert format_ops(10.0) == "10"
        assert format_ops(3) == "3"
        assert format_ops(2.5) == "2.5"

    def test_count_axis_separate_from_vtime(self):
        p = Profiler()
        p.enable()
        p.count("hb.query.dp", n=3)
        p.count("hb.query.dp")
        assert p.count_cells() == [("hb.query.dp", NO_FRAME, 4)]
        assert p.total_ops == 0.0
        assert p.folded() == ""          # counts never enter the flamegraph


# ---------------------------------------------------------------------------
# exactness + determinism
# ---------------------------------------------------------------------------

class TestExactness:
    def test_bucket_sums_equal_vtime_ops_exactly(self, prof):
        from repro.core.tool import TaskgrindTool
        from repro.openmp.api import make_env
        from repro.workloads.synthetic import omp_heat
        prof.enable()
        machine = Machine(seed=0)
        tool = TaskgrindTool(TaskgrindOptions())
        machine.add_tool(tool)
        env = make_env(machine, nthreads=4, source_file="heat.c")
        env.rt.ompt.register(tool.make_ompt_shim())
        machine.run(lambda: omp_heat(env, n=64, steps=4, chunks=4))
        vt = machine.cost.vtime_ops
        assert vt > 0
        # bit-identical, not approximately equal: the profiler mirrors the
        # serialized clock's additions in charge order
        assert prof.total_ops == vt
        assert sum(ops for *_, ops in prof.vtime_cells()) == vt

    def test_disabled_profiler_stays_empty_during_run(self, prof):
        assert not prof.enabled
        run_benchmark(program("fib"), "taskgrind", nthreads=2, seed=0)
        assert len(prof) == 0

    def test_same_seed_byte_identical_folded(self, prof):
        p, _ = profiled_run("heat", seed=7)
        first = p.folded()
        first_total = p.total_ops
        p2, _ = profiled_run("heat", seed=7)
        assert p2.folded() == first
        assert p2.total_ops == first_total

    def test_different_programs_differ(self, prof):
        p, _ = profiled_run("heat", seed=0)
        heat = p.folded()
        p2, _ = profiled_run("fib", seed=0)
        assert p2.folded() != heat


# ---------------------------------------------------------------------------
# mode agreement
# ---------------------------------------------------------------------------

#: classes whose cost legitimately depends on the access-recording mode
ACCESS_CLASSES = ("record.", "elide.", "suppress.", "access.")


class TestModeAgreement:
    def test_sync_and_full_agree_on_non_access_buckets(self, prof):
        p, _ = profiled_run("heat", record_mode="full")
        full = {k: v for k, v in p.class_totals().items()
                if not k.startswith(ACCESS_CLASSES)}
        p2, _ = profiled_run("heat", record_mode="sync")
        sync = {k: v for k, v in p2.class_totals().items()
                if not k.startswith(ACCESS_CLASSES)}
        assert full and sync
        assert full == sync
        # and the sync pass actually took the cheap branch
        assert "record.sync-skip" in p2.class_totals()

    def test_elision_diff_names_elided_bucket(self, prof, tmp_path):
        p, _ = profiled_run("scratch", elide=False)
        a = tmp_path / "a.json"
        save_profile(str(a), p)
        p2, _ = profiled_run("scratch", elide=True)
        b = tmp_path / "b.json"
        save_profile(str(b), p2)
        diff = diff_profiles(load_profile(str(a)), load_profile(str(b)))
        top = diff["top_regression"]
        assert top is not None
        assert top["klass"] == "elide.noop"
        # and the record path shrank by the same class movement
        shrunk = [r for r in diff["buckets"]
                  if r["klass"] == "record.access" and r["delta"] < 0]
        assert shrunk


# ---------------------------------------------------------------------------
# the taskgrind-profile/1 document
# ---------------------------------------------------------------------------

class TestProfileDoc:
    def make_profile(self, tmp_path, name="p.json"):
        p = get_profiler()
        p.enable()
        p.charge(0, "compute", 10.0, frame="main")
        p.charge(1, "sync", 4.0, frame="main;leaf")
        p.count("hb.query.label", n=2)
        p.meta["program"] = "unit"
        path = tmp_path / name
        save_profile(str(path), p,
                     phases={"record": {"count": 1, "wall_s": 0.5,
                                        "vtime_ops": 14.0}})
        p.disable()
        p.reset()
        return path

    def test_round_trip(self, prof, tmp_path):
        path = self.make_profile(tmp_path)
        doc = load_profile(str(path))
        assert doc["schema"] == "taskgrind-profile/1"
        assert doc["vtime"] == [[0, "compute", "main", 10.0],
                                [1, "sync", "main;leaf", 4.0]]
        assert doc["counts"] == [["hb.query.label", NO_FRAME, 2]]
        assert doc["meta"]["program"] == "unit"
        assert doc["meta"]["total_ops"] == 14.0
        assert doc["phases"]["record"]["vtime_ops"] == 14.0
        assert validate_profile_doc(str(path)) == []

    def test_folded_from_doc_matches_live(self, prof, tmp_path):
        p, _ = profiled_run("fib")
        live = p.folded()
        path = tmp_path / "fib.json"
        save_profile(str(path), p)
        assert profdoc.to_folded(load_profile(str(path))) == live

    def test_crc_corruption_detected(self, prof, tmp_path):
        path = self.make_profile(tmp_path)
        lines = path.read_text().splitlines()
        chunk = json.loads(lines[1])
        chunk["payload"]["cells"][0][3] = 9999.0   # tamper, keep old crc
        lines[1] = json.dumps(chunk)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ProfileCorruptionError) as exc:
            load_profile(str(path))
        assert "checksum" in str(exc.value)
        assert any("checksum" in e for e in validate_profile_doc(str(path)))

    def test_truncation_detected(self, prof, tmp_path):
        path = self.make_profile(tmp_path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")   # drop the end chunk
        with pytest.raises(ProfileCorruptionError) as exc:
            load_profile(str(path))
        assert "truncated" in str(exc.value)

    def test_seq_gap_detected(self, prof, tmp_path):
        path = self.make_profile(tmp_path)
        lines = path.read_text().splitlines()
        del lines[1]                                    # hole in the stream
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ProfileCorruptionError) as exc:
            load_profile(str(path))
        assert "seq" in str(exc.value)

    def test_wrong_schema_is_format_error(self, prof, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(
            {"seq": 0, "kind": "header", "crc": 0, "payload": {}}) + "\n")
        with pytest.raises(ProfileError):
            load_profile(str(path))
        # a wrong-schema header with a *valid* crc is a format error
        from repro.core.trace import _payload_crc
        payload = {"schema": "other/9", "version": 9}
        path.write_text(json.dumps(
            {"seq": 0, "kind": "header", "crc": _payload_crc(payload),
             "payload": payload}) + "\n")
        with pytest.raises(ProfileFormatError):
            load_profile(str(path))

    def test_total_ops_cross_check(self, prof, tmp_path):
        path = self.make_profile(tmp_path)
        lines = path.read_text().splitlines()
        from repro.core.trace import _payload_crc
        for i, line in enumerate(lines):
            chunk = json.loads(line)
            if chunk["kind"] == "meta":
                chunk["payload"]["total_ops"] = 999.0
                chunk["crc"] = _payload_crc(chunk["payload"])
                lines[i] = json.dumps(chunk)
        path.write_text("\n".join(lines) + "\n")
        problems = validate_profile_doc(str(path))
        assert any("total_ops" in e for e in problems)

    def test_tracecheck_validates_profiles(self, prof, tmp_path, capsys):
        from repro.obs.tracecheck import main as tracecheck_main
        path = self.make_profile(tmp_path)
        assert tracecheck_main([str(path)]) == 0
        assert "taskgrind-profile/1" in capsys.readouterr().out
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        assert tracecheck_main([str(path)]) == 1
        assert "truncated" in capsys.readouterr().err

    def test_tracecheck_still_handles_timelines(self, tmp_path, capsys):
        from repro.obs.tracecheck import main as tracecheck_main
        path = tmp_path / "timeline.json"
        path.write_text(json.dumps({"traceEvents": []}))
        assert tracecheck_main([str(path)]) == 0


# ---------------------------------------------------------------------------
# diffing + the perf gate's blame line
# ---------------------------------------------------------------------------

class TestDiff:
    def test_diff_profiles_identical_is_empty(self):
        doc = {"vtime": [[0, "compute", "m", 5.0]]}
        d = diff_profiles(doc, doc)
        assert d["buckets"] == []
        assert d["top_regression"] is None
        assert d["delta_total"] == 0.0

    def test_diff_sums_threads_into_buckets(self):
        a = {"vtime": [[0, "compute", "m", 5.0], [1, "compute", "m", 5.0]]}
        b = {"vtime": [[0, "compute", "m", 20.0]]}
        d = diff_profiles(a, b)
        assert d["buckets"] == [{"klass": "compute", "frame": "m",
                                 "a": 10.0, "b": 20.0, "delta": 10.0}]
        assert d["top_regression"]["delta"] == 10.0

    def test_top_regressing_class(self):
        assert top_regressing_class({"a": 5.0}, {"a": 5.0}) is None
        assert top_regressing_class({"a": 5.0}, {"a": 3.0}) is None
        assert top_regressing_class(
            {"a": 5.0, "b": 1.0}, {"a": 6.0, "b": 9.0}) == ("b", 8.0)
        # classes absent on one side count from zero
        assert top_regressing_class({}, {"new": 4.0}) == ("new", 4.0)

    def test_perf_gate_breach_names_bucket(self):
        from repro.bench.perf import compare_to_baseline
        def doc(speedup, classes):
            return {"workloads": {"heat": {
                "combined_speedup": speedup,
                "profile": {"classes": classes, "vtime_ops": 1.0},
            }}}
        ok, lines = compare_to_baseline(
            doc(1.0, {"record.access": 100.0, "translate": 900.0}),
            doc(4.0, {"record.access": 500.0, "translate": 900.0}),
            tolerance=0.4)
        # fresh (first arg) fell below the baseline floor -> breach, and
        # the blame line names the class that grew vs baseline... but
        # here fresh *shrank*; swap to test the growth direction:
        assert not ok
        ok2, lines2 = compare_to_baseline(
            doc(1.0, {"record.access": 500.0, "translate": 900.0}),
            doc(4.0, {"record.access": 100.0, "translate": 900.0}),
            tolerance=0.4)
        assert not ok2
        assert any("record.access" in ln for ln in lines2)

    def test_perf_gate_ok_has_no_blame(self):
        from repro.bench.perf import compare_to_baseline
        doc = {"workloads": {"heat": {"combined_speedup": 2.0,
                                      "profile": {"classes": {"a": 1.0},
                                                  "vtime_ops": 1.0}}}}
        ok, lines = compare_to_baseline(doc, doc, tolerance=0.4)
        assert ok
        assert not any("bucket" in ln for ln in lines)


# ---------------------------------------------------------------------------
# CLI wiring
# ---------------------------------------------------------------------------

class TestCli:
    def test_profile_run_writes_doc_and_flame(self, prof, tmp_path, capsys):
        out = tmp_path / "p.json"
        flame = tmp_path / "p.folded"
        rc = profdoc.main(["run", "fib", "--threads", "2",
                           "--out", str(out), "--flame", str(flame)])
        assert rc == 0
        doc = load_profile(str(out))
        assert doc["meta"]["program"] == "fib"
        folded = flame.read_text()
        assert folded.endswith("\n")
        assert any(";translate " in ln or ";compute " in ln
                   for ln in folded.splitlines())
        assert validate_profile_doc(str(out)) == []
        # the profiler singleton is left disabled for the next caller
        assert not get_profiler().enabled

    def test_profile_run_unknown_program(self, prof, capsys):
        assert profdoc.main(["run", "no-such-program"]) == 2

    def test_profile_diff_cli(self, prof, tmp_path, capsys):
        p, _ = profiled_run("scratch", elide=False)
        a = tmp_path / "a.json"
        save_profile(str(a), p)
        p2, _ = profiled_run("scratch", elide=True)
        b = tmp_path / "b.json"
        save_profile(str(b), p2)
        rc = profdoc.main(["diff", str(a), str(b)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "top regressing bucket: elide.noop" in out
        assert profdoc.main(["diff", str(a), str(b),
                             "--fail-on-regression"]) == 1

    def test_profile_show_and_check(self, prof, tmp_path, capsys):
        p, _ = profiled_run("fib")
        path = tmp_path / "p.json"
        save_profile(str(path), p)
        assert profdoc.main(["show", str(path)]) == 0
        out = capsys.readouterr().out
        assert "compute" in out
        assert profdoc.main(["check", str(path)]) == 0
        path.write_text(path.read_text().rsplit("\n", 2)[0] + "\n")
        assert profdoc.main(["check", str(path)]) == 1

    def test_runner_profile_flag(self, prof, tmp_path, capsys):
        from repro.bench.runner import main as run_main
        out = tmp_path / "run.json"
        rc = run_main(["fib", "--threads", "2", "--profile", str(out)])
        assert rc in (0, 1)
        assert validate_profile_doc(str(out)) == []

    def test_perf_profiles_dir(self, prof, tmp_path):
        from repro.bench.perf import run_perf
        results = run_perf(workloads=("fib",), max_events=2000, repeats=1,
                           profiles_dir=str(tmp_path / "profiles"))
        block = results["workloads"]["fib"]["profile"]
        assert block["vtime_ops"] > 0
        assert block["classes"]
        assert sum(block["classes"].values()) == block["vtime_ops"]
        doc_path = tmp_path / "profiles" / "fib.profile.json"
        assert validate_profile_doc(str(doc_path)) == []
        doc = load_profile(str(doc_path))
        assert profdoc.class_totals(doc) == block["classes"]
        # timed sections ran with the profiler disabled again
        assert not get_profiler().enabled
