"""Tests for the execution timeline tracer (repro.obs.tracer).

Four groups:

* tracer unit semantics — ring-buffer bounding, disabled no-op, span/flow
  pairing, export-time timestamp ordering;
* schema — a real instrumented run's export passes the
  :mod:`repro.obs.tracecheck` validator (the same check CI runs);
* provenance witnesses — ``--explain`` content for a known-racy DRB
  program, and absence of reports for a known race-free one;
* CLI wiring — ``--trace-timeline`` through the runner and offline CLIs.
"""

import json

import pytest

from repro.bench import drb
from repro.bench.runner import run_benchmark
from repro.bench.runner import main as run_main
from repro.core.offline import main as offline_main
from repro.core.tool import TaskgrindOptions
from repro.obs.tracecheck import validate, validate_events
from repro.obs.tracer import JOIN_TID, TimelineTracer, get_tracer

RACY = "027-taskdependmissing-orig"
RACE_FREE = "072-taskdep1-orig"


def program(name):
    for p in drb.REGISTRY:
        if p.name == name:
            return p
    raise LookupError(name)


@pytest.fixture
def tracer():
    """The process singleton, reset after the test so other tests see it
    disabled (the hooks prebind it at import time)."""
    t = get_tracer()
    yield t
    t.reset()


# ---------------------------------------------------------------------------
# tracer unit semantics
# ---------------------------------------------------------------------------

class TestTracerUnit:
    def test_disabled_records_nothing(self):
        t = TimelineTracer()
        assert not t.enabled
        t.instant("x")
        t.begin_span("p", 0)
        t.end_span("p", 0)
        # emit methods are unguarded at this level; the *hooks* guard on
        # .enabled — but a never-enabled tracer must still export cleanly
        t2 = TimelineTracer()
        assert len(t2) == 0
        assert t2.to_dict()["traceEvents"] == []

    def test_enable_resets_previous_buffer(self):
        t = TimelineTracer()
        t.enable(max_events=100)
        t.instant("a")
        n = len(t)
        t.enable(max_events=100)
        assert len(t) < n + 1          # old events gone, only fresh metadata

    def test_ring_buffer_bounds_and_counts_drops(self):
        t = TimelineTracer()
        t.enable(max_events=50)
        for i in range(200):
            t.instant(f"e{i}")
        assert len(t) == 50
        doc = t.to_dict()
        assert doc["otherData"]["dropped"] > 0
        assert len(doc["traceEvents"]) == 50

    def test_span_pairing_and_nesting(self):
        t = TimelineTracer()
        t.enable()
        t.begin_span("outer", 0)
        t.begin_span("inner", 0)
        t.end_span("inner", 0)
        t.end_span("outer", 0)
        assert validate(t.to_dict()) == []

    def test_flow_pairs_match(self):
        t = TimelineTracer()
        t.enable()
        t.edge_flow("hb", 0, 1)
        doc = t.to_dict()
        assert validate(doc) == []
        phases = [e["ph"] for e in doc["traceEvents"] if e["ph"] in "sf"]
        assert phases.count("s") == 1 and phases.count("f") == 1

    def test_close_all_terminates_open_segments_lifo(self):
        t = TimelineTracer()
        t.enable()
        t.segment_begin(0, 0, "serial", "root")
        t.segment_begin(1, 0, "task", "leaf")
        doc = t.to_dict()                # close_all runs inside
        assert validate(doc) == []
        ends = [e for e in doc["traceEvents"] if e["ph"] == "E"]
        assert all(e["args"]["unterminated"] for e in ends)

    def test_exported_ts_monotone_nonnegative(self):
        t = TimelineTracer()
        t.enable()
        t.segment_begin(0, 0, "serial", "a")
        t.segment_begin(1, 1, "task", "b")
        t.segment_end(1)
        t.segment_end(0)
        # race flow back-dates anchors to span midpoints: export order must
        # still be monotone (stable sort by ts)
        assert t.race_flow(0, 1)
        last = -1.0
        for ev in t.to_dict()["traceEvents"]:
            if ev["ph"] == "M":
                continue
            assert ev["ts"] >= 0
            assert ev["ts"] >= last
            last = ev["ts"]

    def test_race_flow_without_spans_needs_thread_fallback(self):
        t = TimelineTracer()
        t.enable()
        assert not t.race_flow(7, 8)                   # no spans, no tids
        assert t.race_flow(7, 8, t1=0, t2=1)           # offline fallback
        assert validate(t.to_dict()) == []

    def test_virtual_segment_maps_to_join_lane(self):
        t = TimelineTracer()
        t.enable()
        t.instant("barrier", -1)
        ev = [e for e in t.to_dict()["traceEvents"] if e["ph"] == "i"][0]
        assert ev["tid"] == JOIN_TID

    def test_phase_lanes_are_per_os_thread(self):
        import threading
        t = TimelineTracer()
        t.enable()
        lanes = []
        threads = [threading.Thread(target=lambda: lanes.append(t.phase_lane()))
                   for _ in range(3)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert len(set(lanes)) == 3


# ---------------------------------------------------------------------------
# schema of a real instrumented run (the check CI performs)
# ---------------------------------------------------------------------------

class TestRealRunSchema:
    def test_run_export_passes_tracecheck(self, tracer):
        tracer.enable()
        result = run_benchmark(program(RACY), "taskgrind")
        doc = tracer.to_dict()
        assert result.report_count >= 1
        assert validate(doc, require_flows=1, require_segments=True) == []
        assert doc["otherData"]["axis"] == "virtual"
        # at least one race-provenance flow per reported race
        races = [e for e in doc["traceEvents"]
                 if e.get("cat") == "race" and e["ph"] == "s"]
        assert len(races) >= result.report_count
        names = {e["name"] for e in doc["traceEvents"]}
        assert any(n.startswith("seg#") for n in names)
        assert any(n.startswith("shim.ompt.") for n in names)
        assert "task.create" in names

    def test_required_keys_on_every_event(self, tracer):
        tracer.enable()
        run_benchmark(program(RACY), "taskgrind")
        for ev in tracer.to_dict()["traceEvents"]:
            for key in ("ph", "ts", "pid", "tid", "name"):
                assert key in ev

    def test_disabled_tracer_records_nothing_during_run(self, tracer):
        assert not tracer.enabled
        run_benchmark(program(RACY), "taskgrind")
        assert len(tracer) == 0

    def test_validator_flags_malformed_traces(self):
        assert validate({}) != []
        bad = [{"ph": "B", "ts": 0, "pid": 1, "tid": 0, "name": "x"}]
        assert any("unclosed" in e for e in validate_events(bad))
        unordered = [
            {"ph": "i", "ts": 5.0, "pid": 1, "tid": 0, "name": "a"},
            {"ph": "i", "ts": 1.0, "pid": 1, "tid": 0, "name": "b"},
        ]
        assert any("monotone" in e for e in validate_events(unordered))


# ---------------------------------------------------------------------------
# provenance witnesses (--explain)
# ---------------------------------------------------------------------------

class TestWitness:
    def test_racy_program_witness_content(self):
        result = run_benchmark(program(RACY), "taskgrind",
                               taskgrind_options=TaskgrindOptions(explain=True))
        assert result.report_count >= 1
        for rep in result.reports:
            w = rep.witness
            assert w is not None
            assert w.s1_path and w.s1_path[0][0] == rep.s1.id
            assert w.s2_path and w.s2_path[0][0] == rep.s2.id
            assert w.s1_tasks and w.s2_tasks        # live run: tasks known
            assert w.nca_id is not None             # same parallel region
            assert w.first_interval is not None
            assert w.hb_explanation["tier"] in ("label", "index", "dp")
            assert "reason" in w.hb_explanation
            # the witness survives the JSON path
            d = w.to_dict()
            json.dumps(d)
            assert d["nca"]["segment"] == w.nca_id

    def test_witness_rendered_in_report(self):
        from repro.core.reports import format_report
        result = run_benchmark(program(RACY), "taskgrind",
                               taskgrind_options=TaskgrindOptions(explain=True))
        text = format_report(result.reports[0])
        assert "provenance:" in text
        assert "no happens-before path" in text

    def test_race_free_program_reports_nothing(self):
        result = run_benchmark(program(RACE_FREE), "taskgrind",
                               taskgrind_options=TaskgrindOptions(explain=True))
        assert result.report_count == 0

    def test_without_explain_no_witness(self):
        result = run_benchmark(program(RACY), "taskgrind")
        assert all(r.witness is None for r in result.reports)


# ---------------------------------------------------------------------------
# CLI wiring
# ---------------------------------------------------------------------------

class TestCli:
    def test_runner_trace_timeline_and_explain(self, tracer, tmp_path,
                                               capsys):
        out = tmp_path / "timeline.json"
        rc = run_main([RACY, "--trace-timeline", str(out), "--explain"])
        assert rc == 1                               # races reported
        doc = json.loads(out.read_text())
        assert validate(doc, require_flows=1, require_segments=True) == []
        captured = capsys.readouterr().out
        assert "provenance:" in captured

    def test_offline_trace_timeline_and_explain(self, tracer, tmp_path,
                                                capsys):
        trace = tmp_path / "trace.json"
        rc = run_main([RACY, "--save-trace", str(trace)])
        assert rc == 1
        out = tmp_path / "timeline.json"
        rc = offline_main([str(trace), "--trace-timeline", str(out),
                           "--explain"])
        assert rc == 1
        doc = json.loads(out.read_text())
        # offline axis is wall-clock; hb edge flows come from graph load,
        # race flows from the thread-lane fallback
        assert doc["otherData"]["axis"] == "wall"
        assert validate(doc, require_flows=1) == []
        captured = capsys.readouterr().out
        assert "provenance:" in captured
        assert "no common ancestor" in captured or "diverged at" in captured

    def test_explain_requires_taskgrind(self, capsys):
        rc = run_main([RACY, "--tool", "archer", "--explain"])
        assert rc == 2


# ---------------------------------------------------------------------------
# per-run scope (mark / delta_since / new_run)
# ---------------------------------------------------------------------------

class TestPerRunScope:
    def test_mark_and_delta_since(self, tracer):
        tracer.enable()
        tracer.instant("a")
        base = tracer.mark()
        tracer.instant("b")
        tracer.instant("c")
        delta = tracer.delta_since(base)
        assert [ev["name"] for ev in delta] == ["b", "c"]
        assert tracer.delta_since(tracer.mark()) == []

    def test_delta_survives_ring_eviction(self, tracer):
        tracer.enable(max_events=4)
        base = tracer.mark()
        for i in range(10):
            tracer.instant(f"e{i}")
        delta = tracer.delta_since(base)
        # 10 were emitted but only the last 4 remain in the ring; the
        # shortfall is how callers detect eviction
        assert [ev["name"] for ev in delta] == ["e6", "e7", "e8", "e9"]
        assert tracer._total_emitted - base == 10

    def test_new_run_clears_span_anchors_not_buffer(self, tracer):
        tracer.enable()
        tracer.segment_begin(0, 0, "task", "t1")
        tracer.segment_end(0)
        assert 0 in tracer.seg_spans
        before = len(tracer)
        tracer.new_run()
        assert tracer.seg_spans == {}
        assert len(tracer) == before       # recorded events survive

    def test_back_to_back_runs_do_not_share_ring_events(self, tracer):
        """Two run_benchmark calls in one process: the second run's scope
        contains only its own events (the regression this API exists for)."""
        tracer.enable()
        run_benchmark(program(RACE_FREE), "taskgrind", nthreads=2, seed=0)
        first_total = tracer._total_emitted
        assert first_total > 0
        base = tracer.mark()
        run_benchmark(program(RACE_FREE), "taskgrind", nthreads=2, seed=0)
        second = tracer.delta_since(base)
        assert len(second) == tracer._total_emitted - first_total
        # run 2's segment spans re-anchor from zero, so every span ts in
        # the new scope is fresh (no ids resolved against run 1's table)
        assert all(ev["ts"] >= 0 for ev in second)
        # and run_benchmark itself opened the new scope: no stale anchors
        begins = [ev for ev in second
                  if ev.get("ph") == "B" and ev.get("cat") == "segment"]
        assert begins, "second run recorded no segment spans"

    def test_counter_events_validate(self, tracer):
        tracer.enable()
        tracer.counter("prof.ops", {"record.access": 10.0, "sync": 2.0},
                       tid=0)
        events = list(tracer._events)
        cev = [ev for ev in events if ev["ph"] == "C"]
        assert len(cev) == 1
        assert cev[0]["args"] == {"record.access": 10.0, "sync": 2.0}
        assert validate_events([ev for ev in events if ev["ph"] != "M"]) == []

    def test_profiler_counters_merge_onto_timeline(self, tracer, tmp_path):
        """With profiler + tracer both on, segment closes sample cumulative
        per-class op counters onto the run's lanes — and the exported doc
        still passes tracecheck."""
        from repro.obs.prof import get_profiler
        prof = get_profiler()
        tracer.enable()
        prof.enable()
        try:
            run_benchmark(program(RACE_FREE), "taskgrind", nthreads=2,
                          seed=0)
        finally:
            prof.disable()
            prof.reset()
        out = tmp_path / "timeline.json"
        tracer.export(str(out))
        doc = json.loads(out.read_text())
        counters = [ev for ev in doc["traceEvents"]
                    if ev.get("ph") == "C" and ev.get("name") == "prof.ops"]
        assert counters, "no prof.ops counter samples on the timeline"
        assert all(isinstance(v, (int, float))
                   for ev in counters for v in ev["args"].values())
        assert validate(doc) == []
