"""Property tests for the perf fast paths (write-combining recorder, O(1)
happens-before index, parallel analysis).

Three contracts, each checked against the pre-existing implementation as
oracle:

* the write-combining recorder (``Segment.record`` + bulk flush) leaves
  byte-identical interval trees to the legacy immediate-insert path, for any
  access stream;
* the order-maintenance happens-before index agrees with the bitmask
  reachability DP on **every** segment pair of randomly shaped programs —
  exercised in ``checked`` mode, where every O(1) answer is asserted against
  the DP inline, plus an explicit all-pairs sweep here;
* the three analysis passes (naive / indexed / parallel at several worker
  counts) produce identical candidate sets, and the fast-record tool run
  reports the same races as a legacy-configured run.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from hypothesis import given, settings, strategies as st

from repro.core.analysis import (find_races_indexed, find_races_naive,
                                 find_races_parallel)
from repro.core.segments import Segment
from repro.core.tool import TaskgrindOptions, TaskgrindTool
from repro.machine.machine import Machine
from repro.openmp.api import make_env


# ---------------------------------------------------------------------------
# recorder parity
# ---------------------------------------------------------------------------

# streams biased toward the recorder's interesting regimes: slot collisions
# (same (lo >> 6) & 15 cache line), hull extensions, adjacent coalescing
access = st.tuples(st.integers(0, 2048),          # addr
                   st.integers(1, 16),            # size
                   st.booleans())                 # is_write
streams = st.lists(access, max_size=300)


class TestRecorderParity:
    @given(streams)
    @settings(max_examples=80, deadline=None)
    def test_byte_identical_trees(self, stream):
        fast = Segment(0, 0, None, "task")
        legacy = Segment(1, 0, None, "task")
        for addr, size, w in stream:
            fast.record(addr, size, w, None)
            legacy.record_immediate(addr, size, w, None)
        fast.flush_accesses()
        assert fast.reads.pairs() == legacy.reads.pairs()
        assert fast.writes.pairs() == legacy.writes.pairs()
        assert fast.reads.total_bytes == legacy.reads.total_bytes
        assert fast.writes.total_bytes == legacy.writes.total_bytes

    @given(streams, streams)
    @settings(max_examples=40, deadline=None)
    def test_interleaved_flushes(self, s1, s2):
        """Reading ``.reads``/``.writes`` mid-stream (which flushes pending
        cells) must not change the final trees."""
        fast = Segment(0, 0, None, "task")
        legacy = Segment(1, 0, None, "task")
        for addr, size, w in s1:
            fast.record(addr, size, w, None)
            legacy.record_immediate(addr, size, w, None)
        fast.flush_accesses()                     # mid-stream flush
        for addr, size, w in s2:
            fast.record(addr, size, w, None)
            legacy.record_immediate(addr, size, w, None)
        fast.flush_accesses()
        assert fast.reads.pairs() == legacy.reads.pairs()
        assert fast.writes.pairs() == legacy.writes.pairs()


# ---------------------------------------------------------------------------
# random program driver (shared by the HB-index and analysis parity tests)
# ---------------------------------------------------------------------------

def _random_body(rng: random.Random, *, with_deps: bool):
    """A random nest of parallel regions / task batches / taskwaits /
    taskgroups, with random accesses into a shared arena."""
    n_regions = rng.randint(1, 2)
    plan = []
    for _ in range(n_regions):
        n_batches = rng.randint(1, 3)
        batches = []
        for _ in range(n_batches):
            tasks = []
            for _ in range(rng.randint(1, 3)):
                deps = ()
                if with_deps and rng.random() < 0.4:
                    deps = tuple(sorted({rng.randrange(3)
                                         for _ in range(rng.randint(1, 2))}))
                tasks.append((rng.randrange(8),          # slot written
                              rng.randrange(8),          # slot read
                              deps))
            sep = rng.choice(["taskwait", "taskgroup", "none"])
            batches.append((tasks, sep))
        plan.append(batches)

    def body(env):
        arena = env.ctx.global_var("fp_arena", 8 * 8, elem=8)
        tokens = env.ctx.global_var("fp_deps", 8 * 3, elem=8)

        for batches in plan:
            def single_body(batches=batches):
                for tasks, sep in batches:
                    def launch():
                        for wslot, rslot, deps in tasks:
                            def tb(tv, w=wslot, r=rslot):
                                arena.read(r)
                                arena.write(w)
                            kw = {}
                            if deps:
                                kw["depend"] = {"inout": [
                                    (tokens.index_addr(d), 8)
                                    for d in deps]}
                            env.task(tb, **kw)
                    if sep == "taskgroup":
                        env.taskgroup(launch)
                    else:
                        launch()
                        if sep == "taskwait":
                            env.taskwait()
                env.taskwait()
            env.parallel_single(single_body)
    return body


def _run(body, *, nthreads: int, seed: int, options=None
         ) -> TaskgrindTool:
    machine = Machine(seed=seed)
    tool = TaskgrindTool(options or TaskgrindOptions(
        model_multithread_lockup=False))
    machine.add_tool(tool)
    env = make_env(machine, nthreads=nthreads)
    env.rt.ompt.register(tool.make_ompt_shim())

    def main():
        with env.ctx.function("main", line=1):
            body(env)
    machine.run(main)
    return tool


# ---------------------------------------------------------------------------
# HB index vs bitmask oracle
# ---------------------------------------------------------------------------

class TestHbIndexAgainstOracle:
    @given(st.integers(0, 10 ** 6), st.sampled_from([1, 2, 4]))
    @settings(max_examples=25, deadline=None)
    def test_all_pairs_agree(self, prog_seed, nthreads):
        body = _random_body(random.Random(prog_seed), with_deps=False)
        tool = _run(body, nthreads=nthreads, seed=prog_seed % 97,
                    options=TaskgrindOptions(model_multithread_lockup=False,
                                             hb_mode="checked"))
        graph = tool.builder.graph
        idx = graph.hb_index
        assert idx is not None
        # dependence-free fork-join programs must stay on the exact index
        assert idx.exact, idx.inexact_reason
        reach = graph._reachability()
        segs = graph.segments
        for a in segs:
            for b in segs:
                if a is b:
                    continue
                hint = idx.happens_before_hint(a.id, b.id)
                assert hint is not None
                assert hint == bool(reach[a.id] >> b.id & 1), \
                    f"({a.id} -> {b.id})"

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=15, deadline=None)
    def test_dependences_degrade_safely(self, prog_seed):
        """With task dependences the index may go inexact — every query must
        then fall back to the DP, and checked mode must still pass."""
        body = _random_body(random.Random(prog_seed), with_deps=True)
        tool = _run(body, nthreads=2, seed=prog_seed % 97,
                    options=TaskgrindOptions(model_multithread_lockup=False,
                                             hb_mode="checked"))
        graph = tool.builder.graph
        idx = graph.hb_index
        reach = graph._reachability()
        for a in graph.segments:
            for b in graph.segments:
                if a is b:
                    continue
                hint = idx.happens_before_hint(a.id, b.id)
                if hint is not None:
                    assert hint == bool(reach[a.id] >> b.id & 1)


# ---------------------------------------------------------------------------
# analysis pass parity
# ---------------------------------------------------------------------------

def _canon(cands) -> List[Tuple]:
    return sorted((c.key(), tuple(c.ranges.pairs())) for c in cands)


class TestAnalysisParity:
    @given(st.integers(0, 10 ** 6), st.sampled_from([1, 2, 4]))
    @settings(max_examples=20, deadline=None)
    def test_passes_agree(self, prog_seed, nthreads):
        body = _random_body(random.Random(prog_seed), with_deps=True)
        tool = _run(body, nthreads=nthreads, seed=prog_seed % 97)
        graph = tool.builder.graph
        naive = _canon(find_races_naive(graph))
        indexed = _canon(find_races_indexed(graph))
        assert naive == indexed
        for workers in (1, 2, 4):
            par = find_races_parallel(graph, workers=workers)
            assert _canon(par) == indexed
            # the parallel pass also promises a deterministic sorted order
            assert [c.key() for c in par] == sorted(c.key() for c in par)

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=12, deadline=None)
    def test_fast_tool_matches_legacy_tool(self, prog_seed):
        """End-to-end: fast-record + auto hb vs legacy record + bitmask hb
        must produce identical reports."""
        body = _random_body(random.Random(prog_seed), with_deps=True)
        fast = _run(body, nthreads=2, seed=prog_seed % 97)
        legacy = _run(body, nthreads=2, seed=prog_seed % 97,
                      options=TaskgrindOptions(
                          model_multithread_lockup=False,
                          fast_record=False, hb_mode="bitmask"))
        fr = fast.finalize()
        lr = legacy.finalize()
        assert fast.raw_candidates == legacy.raw_candidates
        assert [r.key() for r in fr] == [r.key() for r in lr]
