"""Tests for segment-graph construction (happens-before semantics)."""


from repro.core.segments import SegmentGraph, SegmentModelConfig


class TestSegmentGraphPrimitives:
    def test_empty_graph(self):
        g = SegmentGraph()
        assert g.segments == []
        g.check_acyclic()

    def test_edge_and_reachability(self):
        g = SegmentGraph()
        a = g.new_segment(thread_id=0, task=None, kind="serial")
        b = g.new_segment(thread_id=0, task=None, kind="serial")
        c = g.new_segment(thread_id=0, task=None, kind="serial")
        g.add_edge(a, b)
        g.add_edge(b, c)
        assert g.happens_before(a, c)
        assert not g.happens_before(c, a)
        assert g.ordered(a, c) and g.ordered(c, a)

    def test_independent_branches(self):
        g = SegmentGraph()
        root = g.new_segment(thread_id=0, task=None, kind="serial")
        l = g.new_segment(thread_id=0, task=None, kind="task")
        r = g.new_segment(thread_id=1, task=None, kind="task")
        g.add_edge(root, l)
        g.add_edge(root, r)
        assert g.independent(l, r)
        assert not g.independent(root, l)

    def test_backward_id_edges_allowed(self):
        """Edges may point to lower ids (joins absorb late finishers)."""
        g = SegmentGraph()
        a = g.new_segment(thread_id=0, task=None, kind="serial")
        join = g.new_segment(thread_id=-1, task=None, kind="join",
                             virtual=True)
        late = g.new_segment(thread_id=1, task=None, kind="task")
        post = g.new_segment(thread_id=0, task=None, kind="serial")
        g.add_edge(a, late)
        g.add_edge(late, join)          # backward in id
        g.add_edge(join, post)
        g.check_acyclic()
        assert g.happens_before(late, post)

    def test_self_edge_ignored(self):
        g = SegmentGraph()
        a = g.new_segment(thread_id=0, task=None, kind="serial")
        g.add_edge(a, a)
        assert g.edge_count == 0

    def test_memory_bytes_counts_nodes(self):
        g = SegmentGraph()
        s = g.new_segment(thread_id=0, task=None, kind="serial")
        s.record(0x1000, 64, True, None)
        s.record(0x2000, 64, False, None)
        assert g.memory_bytes(bytes_per_node=64, bytes_per_segment=100) == \
            2 * 64 + 100

    def test_reachability_cache_invalidation(self):
        g = SegmentGraph()
        a = g.new_segment(thread_id=0, task=None, kind="serial")
        b = g.new_segment(thread_id=0, task=None, kind="serial")
        assert not g.ordered(a, b)
        g.add_edge(a, b)
        assert g.ordered(a, b)


class TestConstructionBasics:
    def test_two_independent_tasks(self, run_with_builder):
        def body(env):
            def make():
                env.task(lambda tv: None, name="tA")
                env.task(lambda tv: None, name="tB")
            env.parallel_single(make)

        run = run_with_builder(body)
        a = run.first_segment("tA")
        b = run.first_segment("tB")
        assert run.graph.independent(a, b)

    def test_task_after_creator_prefix(self, run_with_builder):
        """Creator's pre-creation accesses happen-before the child."""
        def body(env):
            x = env.ctx.malloc(8)

            def make():
                x.write(0)                      # before creation
                env.task(lambda tv: None, name="tA")
                x.write(0)                      # after creation (concurrent)
            env.parallel_single(make)

        run = run_with_builder(body)
        child = run.first_segment("tA")
        # find the creator's segments: those with write accesses
        writers = [s for s in run.graph.segments
                   if s.writes and s is not child]
        assert len(writers) == 2
        pre, post = sorted(writers, key=lambda s: s.id)
        assert run.graph.happens_before(pre, child)
        assert run.graph.independent(post, child)

    def test_dependence_orders_tasks(self, run_with_builder):
        def body(env):
            x = env.ctx.malloc(8)

            def make():
                env.task(lambda tv: None, depend={"out": [x]}, name="tA")
                env.task(lambda tv: None, depend={"in": [x]}, name="tB")
            env.parallel_single(make)

        run = run_with_builder(body)
        assert run.graph.happens_before(run.first_segment("tA"),
                                        run.first_segment("tB"))

    def test_in_in_unordered(self, run_with_builder):
        def body(env):
            x = env.ctx.malloc(8)

            def make():
                env.task(lambda tv: None, depend={"out": [x]}, name="tW")
                env.task(lambda tv: None, depend={"in": [x]}, name="tR1")
                env.task(lambda tv: None, depend={"in": [x]}, name="tR2")
            env.parallel_single(make)

        run = run_with_builder(body)
        r1, r2 = run.first_segment("tR1"), run.first_segment("tR2")
        assert run.graph.independent(r1, r2)
        assert run.graph.happens_before(run.first_segment("tW"), r1)

    def test_taskwait_orders_children_before_continuation(
            self, run_with_builder):
        def body(env):
            x = env.ctx.malloc(8)

            def make():
                env.task(lambda tv: None, name="tA")
                env.taskwait()
                x.write(0)                      # after taskwait
            env.parallel_single(make)

        run = run_with_builder(body)
        child = run.first_segment("tA")
        post = [s for s in run.graph.segments if s.writes][-1]
        assert run.graph.happens_before(child, post)

    def test_taskwait_does_not_cover_grandchildren(self, run_with_builder):
        def body(env):
            x = env.ctx.malloc(8)

            def outer(tv):
                env.task(lambda tv2: None, name="grand")

            def make():
                env.task(outer, name="outer")
                env.taskwait()
                x.write(0)
            env.parallel_single(make)

        run = run_with_builder(body)
        grand = run.first_segment("grand")
        post = [s for s in run.graph.segments if s.writes][-1]
        # grandchild may still be running: no HB to the post-taskwait code
        assert run.graph.independent(grand, post) or \
            run.graph.happens_before(grand, post)  # unless barrier absorbed

    def test_taskgroup_covers_descendants(self, run_with_builder):
        def body(env):
            x = env.ctx.malloc(8)

            def outer(tv):
                env.task(lambda tv2: None, name="grand")

            def make():
                env.taskgroup(lambda: env.task(outer, name="outer"))
                x.write(0)
            env.parallel_single(make)

        run = run_with_builder(body)
        grand = run.first_segment("grand")
        post = [s for s in run.graph.segments if s.writes][-1]
        assert run.graph.happens_before(grand, post)

    def test_barrier_orders_everything(self, run_with_builder):
        def body(env):
            x = env.ctx.global_var("g", 32, elem=8)

            def region(tid):
                x.write(env.thread_num())       # pre-barrier
                env.barrier()
                x.read(env.thread_num())        # post-barrier
            env.parallel(region, num_threads=3)

        run = run_with_builder(body, nthreads=3)
        g = run.graph
        pre = [s for s in g.segments if s.writes]
        post = [s for s in g.segments if s.reads and not s.writes]
        assert len(pre) == 3 and len(post) == 3
        for p in pre:
            for q in post:
                assert g.happens_before(p, q)

    def test_parallel_regions_sequence(self, run_with_builder):
        """Eq. (1): all segments of region 1 precede all of region 2."""
        def body(env):
            x = env.ctx.global_var("g", 32, elem=8)
            env.parallel(lambda tid: x.write(tid), num_threads=2)
            env.parallel(lambda tid: x.read(tid), num_threads=2)

        run = run_with_builder(body, nthreads=2)
        g = run.graph
        r1 = [s for s in g.segments if s.writes]
        r2 = [s for s in g.segments if s.reads and not s.writes]
        assert len(r1) == 2 and len(r2) == 2
        for a in r1:
            for b in r2:
                assert g.happens_before(a, b)


class TestUndeferredModeling:
    def test_if0_task_sequenced(self, run_with_builder):
        def body(env):
            x = env.ctx.malloc(8)

            def make():
                env.task(lambda tv: None, if_=False, name="tU")
                x.write(0)
            env.parallel_single(make)

        run = run_with_builder(body)
        child = run.first_segment("tU")
        post = [s for s in run.graph.segments if s.writes][-1]
        assert run.graph.happens_before(child, post)

    def test_serialized_task_also_sequenced_without_annotation(
            self, run_with_builder):
        """LLVM flag fidelity: included tasks look undeferred to tools."""
        def body(env):
            x = env.ctx.malloc(8)

            def make():
                env.task(lambda tv: None, name="tI")
                x.write(0)
            env.parallel_single(make, num_threads=1)

        run = run_with_builder(body, nthreads=1)
        child = run.first_segment("tI")
        post = [s for s in run.graph.segments if s.writes][-1]
        assert run.graph.happens_before(child, post)

    def test_annotation_rescues_serialized_task(self, run_with_builder):
        def body(env):
            x = env.ctx.malloc(8)

            def make():
                env.task(lambda tv: None, name="tI", annotate_deferrable=True)
                x.write(0)
            env.parallel_single(make, num_threads=1)

        run = run_with_builder(body, nthreads=1)
        # annotation arrives via client request in the full tool; at builder
        # level we mark it directly through the OMPT-visible task object
        # (the conftest observer has no client-request channel) — so here we
        # just assert the *unannotated* default was sequenced and the
        # annotated flag changes _effectively_sequenced.
        child_task = run.first_segment("tI").task
        assert run.builder._effectively_sequenced(child_task)
        run.builder.on_task_annotate_deferrable(child_task)
        assert not run.builder._effectively_sequenced(child_task)

    def test_genuine_if0_not_rescued_by_annotation(self, run_with_builder):
        def body(env):
            def make():
                env.task(lambda tv: None, if_=False, name="tU")
            env.parallel_single(make)

        run = run_with_builder(body)
        task = run.first_segment("tU").task
        run.builder.on_task_annotate_deferrable(task)
        assert run.builder._effectively_sequenced(task)

    def test_config_can_ignore_undeferred(self, run_with_builder):
        cfg = SegmentModelConfig(honor_undeferred=False)

        def body(env):
            x = env.ctx.malloc(8)

            def make():
                env.task(lambda tv: None, if_=False, name="tU")
                x.write(0)
            env.parallel_single(make)

        run = run_with_builder(body, config=cfg)
        child = run.first_segment("tU")
        post = [s for s in run.graph.segments if s.writes][-1]
        assert run.graph.independent(child, post)


class TestDetach:
    def test_detach_completion_at_fulfill(self, run_with_builder):
        def body(env):
            x = env.ctx.malloc(8)
            box = {}

            def t1(tv):
                box["ev"] = tv.detach_event

            def make():
                env.task(t1, detachable=True, name="tD")
                env.task(lambda tv: box["ev"].fulfill(), name="tF")
                env.taskwait()
                x.write(0)
            env.parallel_single(make)

        run = run_with_builder(body)
        post = [s for s in run.graph.segments if s.writes][-1]
        body_seg = run.first_segment("tD")
        assert run.graph.happens_before(body_seg, post)

    def test_detach_ignored_when_unsupported(self, run_with_builder):
        """TaskSanitizer model: detach treated as normal completion."""
        cfg = SegmentModelConfig(honor_detach=False)

        def body(env):
            box = {}

            def make():
                env.task(lambda tv: box.setdefault("ev", tv.detach_event),
                         detachable=True, name="tD")
                env.task(lambda tv: box["ev"].fulfill(), name="tF")
                env.taskwait()
            env.parallel_single(make)

        run = run_with_builder(body, config=cfg)   # must simply not crash
        assert run.first_segment("tD") is not None


class TestMergeable:
    def test_merged_task_shares_parent_segment(self, run_with_builder):
        """DRB129 mechanism: a merged task's accesses land in the parent."""
        def body(env):
            x = env.ctx.malloc(8)

            def make():
                env.task(lambda tv: x.write(0), mergeable=True, if_=False,
                         name="tM")
            env.parallel_single(make)

        run = run_with_builder(body)
        # no segment carries the task: the write went to the parent's
        merged = run.task_segments("tM")
        parent_writers = [s for s in run.graph.segments if s.writes]
        assert parent_writers
        assert all(s in parent_writers or not s.writes for s in merged)


class TestMutexinoutset:
    def test_members_ordered_by_execution_when_honored(
            self, run_with_builder):
        def body(env):
            x = env.ctx.malloc(8)

            def make():
                env.task(lambda tv: x.write(0),
                         depend={"mutexinoutset": [x]}, name="tM1")
                env.task(lambda tv: x.write(0),
                         depend={"mutexinoutset": [x]}, name="tM2")
                env.taskwait()
            env.parallel_single(make)

        run = run_with_builder(body)
        m1, m2 = run.first_segment("tM1"), run.first_segment("tM2")
        assert run.graph.ordered(m1, m2)

    def test_members_unordered_when_not_honored(self, run_with_builder):
        cfg = SegmentModelConfig(honor_mutexinoutset=False)

        def body(env):
            x = env.ctx.malloc(8)

            def make():
                env.task(lambda tv: x.write(0),
                         depend={"mutexinoutset": [x]}, name="tM1")
                env.task(lambda tv: x.write(0),
                         depend={"mutexinoutset": [x]}, name="tM2")
                env.taskwait()
            env.parallel_single(make)

        run = run_with_builder(body, config=cfg)
        m1, m2 = run.first_segment("tM1"), run.first_segment("tM2")
        assert run.graph.independent(m1, m2)


class TestAccessRecording:
    def test_accesses_land_in_executing_segment(self, run_with_builder):
        def body(env):
            x = env.ctx.malloc(16)

            def make():
                env.task(lambda tv: x.write(0, line=7), name="tA")
                env.task(lambda tv: x.read(1, line=9), name="tB")
                env.taskwait()
            env.parallel_single(make)

        run = run_with_builder(body)
        a, b = run.first_segment("tA"), run.first_segment("tB")
        assert a.writes and not a.reads
        assert b.reads and not b.writes
        # tA wrote element 0, tB read element 1 of the same buffer
        (w_lo, w_hi), = a.writes.pairs()
        (r_lo, r_hi), = b.reads.pairs()
        assert r_lo == w_lo + 4

    def test_dense_sweep_compacts(self, run_with_builder):
        def body(env):
            x = env.ctx.malloc(8 * 256, elem=8)

            def make():
                def sweep(tv):
                    for i in range(256):
                        x.write(i)
                env.task(sweep, name="tS")
                env.taskwait()
            env.parallel_single(make)

        run = run_with_builder(body)
        seg = run.first_segment("tS")
        assert len(seg.writes) == 1          # one coalesced node (Fig. 3)
        assert seg.writes.total_bytes == 8 * 256

    def test_tls_snapshot_attached_on_close(self, run_with_builder):
        def body(env):
            def make():
                env.task(lambda tv: None, name="tA")
                env.taskwait()
            env.parallel_single(make)

        run = run_with_builder(body)
        seg = run.first_segment("tA")
        assert not seg.open
        assert seg.tls_snapshot is not None
        assert seg.tls_snapshot.thread_id == seg.thread_id
