"""Shared fixtures for core tests: run a guest OpenMP program under a
SegmentBuilder-only observer or under the full Taskgrind tool."""

from __future__ import annotations

import pytest

from repro.core.segments import SegmentBuilder
from repro.core.tool import TaskgrindOptions, TaskgrindTool
from repro.machine.machine import Machine
from repro.openmp.api import make_env


class BuilderObserver:
    """Minimal OMPT observer feeding a SegmentBuilder + recording accesses."""

    def __init__(self, machine, config=None):
        self.builder = SegmentBuilder(machine, config)
        self.machine = machine

    def _tid(self):
        return self.machine.scheduler.current_id()

    def on_thread_begin(self, tid): ...
    def on_thread_end(self, tid): ...

    def on_parallel_begin(self, region, task):
        self.builder.on_parallel_begin(region, task, self._tid())

    def on_parallel_end(self, region, task):
        self.builder.on_parallel_end(region, task, self._tid())

    def on_implicit_task_begin(self, region, task):
        self.builder.on_implicit_task_begin(region, task, self._tid())

    def on_implicit_task_end(self, region, task):
        self.builder.on_implicit_task_end(region, task, self._tid())

    def on_task_create(self, task, parent):
        self.builder.on_task_create(task, parent, self._tid())

    def on_task_dependences(self, task, deps): ...

    def on_task_dependence_pair(self, pred, succ, dep):
        self.builder.on_task_dependence_pair(pred, succ, dep)

    def on_task_schedule_begin(self, task, tid):
        self.builder.on_task_schedule_begin(task, tid)

    def on_task_schedule_end(self, task, tid, completed):
        self.builder.on_task_schedule_end(task, tid, completed)

    def on_task_detach_fulfill(self, task, tid):
        self.builder.on_task_detach_fulfill(task, tid)

    def on_sync_region_begin(self, kind, task, tid):
        self.builder.on_sync_begin(kind, task, tid)

    def on_sync_region_end(self, kind, task, tid):
        self.builder.on_sync_end(kind, task, tid)

    def on_mutex_acquired(self, name, tid): ...
    def on_mutex_released(self, name, tid): ...


class GraphRun:
    """Run result: the graph + per-task segment lookups."""

    def __init__(self, machine, builder):
        self.machine = machine
        self.builder = builder
        self.graph = builder.graph

    def task_segments(self, name_substr):
        """Segments of tasks whose symbol name contains ``name_substr``."""
        return [s for s in self.graph.segments
                if s.task is not None and name_substr in s.task.symbol_name]

    def first_segment(self, name_substr):
        segs = self.task_segments(name_substr)
        assert segs, f"no segment for task {name_substr!r}"
        return segs[0]


@pytest.fixture
def run_with_builder():
    """Run body(env) and return a GraphRun with the built segment graph.

    The builder records *every* user access (DBI-style, no symbol filter)
    so graph tests don't depend on the suppression layer.
    """
    def _run(body, nthreads=4, seed=0, config=None):
        machine = Machine(seed=seed)
        env = make_env(machine, nthreads=nthreads)
        obs = BuilderObserver(machine, config)
        env.rt.ompt.register(obs)

        # route accesses into the builder via a thin recording tool
        from repro.vex.tool import Tool

        class Rec(Tool):
            name = "rec"
            is_dbi = True

            def on_access(self, event):
                # mimic Taskgrind's default ignore-list so graph assertions
                # see only the guest program's own traffic
                if event.symbol.name.startswith((".omp_task_prologue",
                                                 "__kmp")):
                    return
                obs.builder.record_access(event.thread_id, event.addr,
                                          event.size, event.is_write,
                                          event.loc)

        machine.add_tool(Rec())

        def main():
            with env.ctx.function("main", line=1):
                body(env)
        machine.run(main)
        obs.builder.graph.check_acyclic()
        return GraphRun(machine, obs.builder)

    return _run


@pytest.fixture
def run_taskgrind():
    """Run body(env) under the full TaskgrindTool; returns (tool, machine)."""
    def _run(body, nthreads=4, seed=0, options=None):
        machine = Machine(seed=seed)
        tool = TaskgrindTool(options or TaskgrindOptions())
        machine.add_tool(tool)
        env = make_env(machine, nthreads=nthreads)
        env.rt.ompt.register(tool.make_ompt_shim())

        def main():
            with env.ctx.function("main", line=1):
                body(env)
        machine.run(main)
        tool.finalize()
        return tool, machine

    return _run
