"""Tests for trace export + offline analysis (the Section VII pipeline)."""

import json

import pytest

from repro.core.offline import main as offline_main
from repro.core.trace import (_payload_crc, analyze_trace, load_trace,
                              save_trace)


def racy_listing(env):
    ctx = env.ctx
    x = ctx.malloc(8, line=3, name="x")

    def single_body():
        ctx.line(8)
        env.task(lambda tv: x.write(0, line=9), name="t8")
        ctx.line(11)
        env.task(lambda tv: x.write(0, line=12), name="t11")

    env.parallel_single(single_body)


def stacky_clean(env):
    """Only suppressed (stack-local) conflicts: offline must stay clean."""
    def task_body(tv):
        z = env.ctx.stack_var("z", 8, elem=8)
        z.write(0)

    def make():
        env.task(task_body, annotate_deferrable=True)
        env.task(task_body, annotate_deferrable=True)
        env.taskwait()
    env.parallel_single(make, num_threads=1)


@pytest.fixture
def trace_path(run_taskgrind, tmp_path):
    tool, machine = run_taskgrind(racy_listing)
    path = tmp_path / "run.trace.json"
    save_trace(tool, machine, str(path))
    return str(path), tool


class TestRoundTrip:
    def test_graph_survives(self, trace_path):
        path, tool = trace_path
        graph, view, _flags = load_trace(path)
        orig = tool.builder.graph
        assert len(graph.segments) == len(orig.segments)
        assert graph.edge_count == orig.edge_count
        for a, b in zip(graph.segments, orig.segments):
            assert a.reads.pairs() == b.reads.pairs()
            assert a.writes.pairs() == b.writes.pairs()
            assert a.thread_id == b.thread_id
            assert (a.tls_snapshot is None) == (b.tls_snapshot is None)

    def test_offline_reports_match_online(self, trace_path):
        path, tool = trace_path
        offline = analyze_trace(path)
        assert len(offline) == len(tool.reports) == 1
        assert offline[0].key() == tool.reports[0].key()
        assert offline[0].block_size == tool.reports[0].block_size
        assert str(offline[0].alloc_site) == str(tool.reports[0].alloc_site)

    def test_all_modes_agree_offline(self, trace_path):
        path, _ = trace_path
        counts = {mode: len(analyze_trace(path, mode=mode))
                  for mode in ("naive", "indexed", "parallel")}
        assert len(set(counts.values())) == 1

    def test_version_gate(self, trace_path, tmp_path):
        path, _ = trace_path
        lines = open(path).read().splitlines()
        header = json.loads(lines[0])
        header["version"] = 99
        lines[0] = json.dumps(header)
        bad = tmp_path / "bad.json"
        bad.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="version"):
            load_trace(str(bad))

    def test_version_gate_legacy_doc(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"version": 99, "graph": {}}))
        with pytest.raises(ValueError, match="version"):
            load_trace(str(bad))


class TestSuppressionsOffline:
    def test_stack_suppression_applies_offline(self, run_taskgrind,
                                               tmp_path):
        tool, machine = run_taskgrind(stacky_clean, nthreads=1)
        assert tool.reports == []
        path = tmp_path / "clean.json"
        save_trace(tool, machine, str(path))
        assert analyze_trace(str(path)) == []

    def test_raw_candidates_visible_without_flags(self, run_taskgrind,
                                                  tmp_path):
        tool, machine = run_taskgrind(stacky_clean, nthreads=1)
        path = tmp_path / "clean.json"
        save_trace(tool, machine, str(path))
        lines = open(path).read().splitlines()
        for i, line in enumerate(lines):
            doc = json.loads(line)
            if doc["kind"] == "suppression":
                doc["payload"] = {"suppress_stack": False,
                                  "suppress_tls": False}
                doc["crc"] = _payload_crc(doc["payload"])
                lines[i] = json.dumps(doc)
        raw = tmp_path / "raw.json"
        raw.write_text("\n".join(lines) + "\n")
        assert analyze_trace(str(raw))       # the stack FP reappears


class TestCli:
    def test_text_output(self, trace_path, capsys):
        path, _ = trace_path
        rc = offline_main([path])
        out = capsys.readouterr().out
        assert rc == 1                       # races found -> nonzero
        assert "1 determinacy race(s)" in out
        assert "main.c:8" in out

    def test_json_output(self, trace_path, capsys):
        path, _ = trace_path
        offline_main([path, "--json", "--mode", "parallel"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["error_count"] == 1

    def test_clean_exit_code(self, run_taskgrind, tmp_path, capsys):
        tool, machine = run_taskgrind(stacky_clean, nthreads=1)
        path = tmp_path / "clean.json"
        save_trace(tool, machine, str(path))
        assert offline_main([str(path)]) == 0
