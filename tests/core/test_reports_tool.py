"""Tests for report formatting (Listings 5/6) and TaskgrindTool plumbing."""


from repro.core.reports import dedupe_reports, format_report
from repro.core.tool import TaskgrindOptions, TaskgrindTool
from repro.errors import SimDeadlock


def listing4(env, annotate=False):
    ctx = env.ctx
    x = ctx.malloc(2 * 4, line=3, name="x")

    def single_body():
        ctx.line(8)
        env.task(lambda tv: x.write(0, 42, line=9), name="t8",
                 annotate_deferrable=annotate)
        ctx.line(11)
        env.task(lambda tv: x.write(0, 43, line=12), name="t11",
                 annotate_deferrable=annotate)

    ctx.line(4)
    env.parallel_single(single_body)
    return x


class TestReportContent:
    def test_report_carries_alloc_site(self, run_taskgrind):
        tool, machine = run_taskgrind(lambda env: listing4(env))
        assert len(tool.reports) == 1
        rep = tool.reports[0]
        assert rep.block_size == 8                 # 2 * sizeof(int)
        assert rep.alloc_site is not None and rep.alloc_site.line == 3
        assert rep.alloc_stack and rep.alloc_stack[-1].function == "main"

    def test_report_segment_labels_are_pragma_lines(self, run_taskgrind):
        tool, _ = run_taskgrind(lambda env: listing4(env))
        labels = sorted(tool.reports[0].key())
        assert labels[0].endswith(":11") and labels[1].endswith(":8")

    def test_taskgrind_format(self, run_taskgrind):
        tool, _ = run_taskgrind(lambda env: listing4(env))
        text = format_report(tool.reports[0])
        assert "were declared" in text
        assert "independent while accessing the same memory address" in text
        assert "of size 8" in text
        assert "main.c:3" in text

    def test_romp_format_has_no_debug_info(self, run_taskgrind):
        tool, _ = run_taskgrind(lambda env: listing4(env))
        text = format_report(tool.reports[0], style="romp")
        assert "data race found" in text
        assert "no source information" in text
        assert "main.c" not in text

    def test_conflicting_access_lines(self, run_taskgrind):
        tool, _ = run_taskgrind(lambda env: listing4(env))
        text = format_report(tool.reports[0])
        assert "main.c:9" in text and "main.c:12" in text

    def test_dedupe_collapses_loop_reports(self, run_taskgrind):
        def body(env):
            ctx = env.ctx
            x = ctx.malloc(4, line=3)

            def make():
                for _ in range(3):
                    ctx.line(8)
                    env.task(lambda tv: x.write(0, line=9), name="w")
            env.parallel_single(make)

        tool, _ = run_taskgrind(body)
        assert len(tool.reports) >= 2
        assert len(dedupe_reports(tool.reports)) == 1

    def test_dedupe_is_order_independent(self, run_taskgrind):
        # parallel analysis permutes report order; dedupe must pick the same
        # representatives in the same output order regardless
        import random

        def body(env):
            ctx = env.ctx
            x = ctx.malloc(4, line=3)
            y = ctx.malloc(4, line=4)

            def make():
                for _ in range(2):
                    ctx.line(8)
                    env.task(lambda tv: x.write(0, line=9), name="wx")
                    ctx.line(11)
                    env.task(lambda tv: y.write(0, line=12), name="wy")
            env.parallel_single(make)

        tool, _ = run_taskgrind(body)
        assert len(tool.reports) >= 2
        baseline = dedupe_reports(tool.reports)
        rng = random.Random(0)
        for _ in range(5):
            shuffled = list(tool.reports)
            rng.shuffle(shuffled)
            again = dedupe_reports(shuffled)
            assert [r.key() for r in again] == [r.key() for r in baseline]
            assert [r.sort_key() for r in again] == \
                [r.sort_key() for r in baseline]


class TestToolPlumbing:
    def test_client_requests_flow_through_router(self, run_taskgrind):
        tool, machine = run_taskgrind(lambda env: listing4(env))
        assert machine.client_requests.request_count > 10

    def test_ignore_list_filters_runtime_accesses(self, run_taskgrind):
        tool, _ = run_taskgrind(lambda env: listing4(env))
        # __kmpc_omp_task_alloc / __kmp_fast_free traffic was dropped
        assert tool.recorded_accesses > 0

    def test_memory_accounting_positive(self, run_taskgrind):
        tool, machine = run_taskgrind(lambda env: listing4(env))
        assert tool.memory_bytes(0) > tool.VALGRIND_CORE_BYTES

    def test_analysis_modes_agree(self, run_taskgrind):
        for mode in ("naive", "indexed", "parallel"):
            opts = TaskgrindOptions(analysis=mode)
            tool, _ = run_taskgrind(lambda env: listing4(env), options=opts)
            assert len(tool.reports) == 1, mode

    def test_serialized_clock(self, run_taskgrind):
        tool, machine = run_taskgrind(lambda env: listing4(env))
        assert machine.cost.clock.serialize


class TestModeledLockup:
    def _dep_chain_body(self, env):
        """Annotated tasks with dependences, executed across threads."""
        ctx = env.ctx
        toks = [ctx.malloc(8) for _ in range(4)]

        def region(_tid):
            def single_body():
                for rep in range(6):
                    for c in range(4):
                        env.task(lambda tv: ctx.compute(500),
                                 depend={"inout": [toks[c]]},
                                 annotate_deferrable=True, name=f"chain{c}")
                env.taskwait()
            env.single(single_body)
        env.parallel(region)          # team size = the run's nthreads

    def test_lockup_can_fire_multithreaded(self):
        """The Table II mechanism: somewhere across seeds the cross-thread
        confirmation wait deadlocks a 4-thread annotated+dependent run."""
        from repro.machine.machine import Machine
        from repro.openmp.api import make_env

        hit = 0
        for seed in range(8):
            machine = Machine(seed=seed)
            tool = TaskgrindTool()
            machine.add_tool(tool)
            env = make_env(machine, nthreads=4)
            env.rt.ompt.register(tool.make_ompt_shim())
            try:
                machine.run(lambda: self._dep_chain_body(env))
            except SimDeadlock:
                hit += 1
        assert hit >= 1

    def test_no_lockup_single_thread(self, run_taskgrind):
        tool, _ = run_taskgrind(self._dep_chain_body, nthreads=1)

    def test_no_lockup_without_annotation(self):
        from repro.machine.machine import Machine
        from repro.openmp.api import make_env

        def body(env):
            ctx = env.ctx
            tok = ctx.malloc(8)

            def make():
                for _ in range(8):
                    env.task(lambda tv: ctx.compute(100),
                             depend={"inout": [tok]})
                env.taskwait()
            env.parallel_single(make, num_threads=4)

        for seed in range(4):
            machine = Machine(seed=seed)
            tool = TaskgrindTool()
            machine.add_tool(tool)
            env = make_env(machine, nthreads=4)
            env.rt.ompt.register(tool.make_ompt_shim())
            machine.run(lambda: body(env))      # must not deadlock

    def test_lockup_model_can_be_disabled(self):
        from repro.machine.machine import Machine
        from repro.openmp.api import make_env
        from repro.workloads.lulesh import LuleshConfig, run_lulesh

        opts = TaskgrindOptions(model_multithread_lockup=False)
        machine = Machine(seed=0)
        tool = TaskgrindTool(opts)
        machine.add_tool(tool)
        env = make_env(machine, nthreads=4, source_file="lulesh.cc")
        env.rt.ompt.register(tool.make_ompt_shim())
        machine.run(lambda: run_lulesh(env, LuleshConfig(s=4, iterations=2)))
        tool.finalize()                          # completes, no deadlock
