"""Tests for the fix-suggestion assistant (paper Section VII direction)."""


from repro.core.assistant import render_suggestions, suggest


def reports_for(run_taskgrind, body, **kw):
    tool, _ = run_taskgrind(body, **kw)
    assert tool.reports, "the fixture program must race"
    return tool.reports


class TestSiblingSuggestion:
    def test_depend_clause_suggested(self, run_taskgrind):
        def body(env):
            x = env.ctx.malloc(8, line=3)

            def make():
                env.task(lambda tv: x.write(0, line=8), name="w1")
                env.task(lambda tv: x.write(0, line=11), name="w2")
                env.taskwait()
            env.parallel_single(make)

        report = reports_for(run_taskgrind, body)[0]
        suggestions = suggest(report)
        assert suggestions[0].action == "add depend clauses"
        assert suggestions[0].confidence == "high"
        assert "siblings" in suggestions[0].detail
        assert any("taskwait" in s.detail for s in suggestions)


class TestParentChildSuggestion:
    def test_taskwait_suggested(self, run_taskgrind):
        def body(env):
            x = env.ctx.malloc(8, line=3)

            def make():
                env.task(lambda tv: x.write(0, line=8), name="child")
                x.read(0, line=10)          # parent continuation races
            env.parallel_single(make)

        report = reports_for(run_taskgrind, body)[0]
        (first, *_rest) = suggest(report)
        assert first.action == "add taskwait"
        assert "taskwait" in first.detail


class TestNonSiblingSuggestion:
    def test_hoist_suggested(self, run_taskgrind):
        def body(env):
            x = env.ctx.malloc(8, line=3)

            def outer(tv):
                env.task(lambda tv2: x.write(0, line=10),
                         depend={"out": [x]}, name="nephew")
                env.taskwait()

            def make():
                env.task(lambda tv: x.write(0, line=6),
                         depend={"out": [x]}, name="uncle")
                env.task(outer, name="outer")
                env.taskwait()
            env.parallel_single(make)

        reports = reports_for(run_taskgrind, body)
        # pick the uncle/nephew pair (different parents)
        target = next(r for r in reports
                      if {"uncle", "nephew"} <= {
                          r.s1.task.symbol_name, r.s2.task.symbol_name})
        (first, *_rest) = suggest(target)
        assert first.action == "hoist the dependence"
        assert "siblings" in first.detail or "parents" in first.detail


class TestGrandchildSuggestion:
    def test_taskgroup_suggested(self, run_taskgrind):
        def body(env):
            x = env.ctx.malloc(8, line=3)

            def outer(tv):
                env.task(lambda tv2: x.write(0, line=9), name="grand")

            def make():
                env.task(outer, name="outer")
                env.taskwait()
                x.write(0, line=12)
            env.parallel_single(make)

        reports = reports_for(run_taskgrind, body)
        report = reports[0]
        suggestions = suggest(report)
        assert suggestions        # at least something actionable
        text = " ".join(s.detail for s in suggestions)
        assert "taskgroup" in text or "taskwait" in text


class TestImplicitSuggestion:
    def test_barrier_suggested(self, run_taskgrind):
        def body(env):
            a = env.ctx.global_var("asst", 8 * 4, elem=8)

            def region(tid):
                me = env.thread_num()
                a.write(me, line=6)
                a.read((me + 1) % env.num_threads(), line=7)
            env.parallel(region)

        report = reports_for(run_taskgrind, body)[0]
        (first, *_rest) = suggest(report)
        assert first.action == "add a barrier"


class TestRendering:
    def test_render_block(self, run_taskgrind):
        def body(env):
            x = env.ctx.malloc(8, line=3)

            def make():
                env.task(lambda tv: x.write(0, line=8))
                env.task(lambda tv: x.write(0, line=11))
                env.taskwait()
            env.parallel_single(make)

        report = reports_for(run_taskgrind, body)[0]
        text = render_suggestions(report)
        assert text.startswith("suggested fixes:")
        assert "[high]" in text
