"""Property test: graph serialization round-trips analysis results."""

import json

from hypothesis import given, settings, strategies as st

from repro.core.analysis import find_races_indexed
from repro.core.segments import SegmentGraph
from repro.core.trace import dump_graph, load_graph


def build(n, raw_edges, raw_accs):
    g = SegmentGraph()
    segs = [g.new_segment(thread_id=i % 4, task=None, kind="task")
            for i in range(n)]
    for s in segs:
        s.open = False
    for i, j in raw_edges:
        a, b = sorted((i % n, j % n))
        if a != b:
            g.add_edge(segs[a], segs[b])
    for idx, lo, sz, w in raw_accs:
        segs[idx % n].record(lo, sz, w, None)
    return g


def result_keys(graph):
    return sorted((c.key(), tuple(c.ranges.pairs()))
                  for c in find_races_indexed(graph))


@given(
    st.integers(2, 8),
    st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=10),
    st.lists(st.tuples(st.integers(0, 7), st.integers(0, 64),
                       st.integers(1, 24), st.booleans()), max_size=16),
)
@settings(max_examples=100, deadline=None)
def test_dump_load_preserves_analysis(n, raw_edges, raw_accs):
    graph = build(n, raw_edges, raw_accs)
    expected = result_keys(graph)
    # through JSON, like the on-disk trace
    data = json.loads(json.dumps(dump_graph(graph)))
    restored = load_graph(data)
    assert result_keys(restored) == expected
    assert restored.edge_count == graph.edge_count
    for a, b in zip(restored.segments, graph.segments):
        assert a.reads.pairs() == b.reads.pairs()
        assert a.writes.pairs() == b.writes.pairs()
