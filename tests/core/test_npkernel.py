"""Tests for the vectorized conflict kernel (``analysis_kernel=numpy``).

Property tests pin every numpy primitive to the IntervalSet oracle, and the
end-to-end kernel to the pure-Python analysis pass on random graphs — the
soundness contract of ``analysis_kernel=auto`` picking either freely.
"""

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings, strategies as st

from repro.core import npkernel
from repro.core.analysis import find_races_indexed, find_races_supervised
from repro.core.npkernel import (KernelContext, build_segment_arrays,
                                 coalesce_arrays, conflict_ranges_arrays,
                                 intersect_arrays, resolve_kernel,
                                 union_arrays)
from repro.core.segments import SegmentGraph
from repro.util.intervals import IntervalSet

ranges_strategy = st.lists(
    st.tuples(st.integers(0, 400), st.integers(1, 40)).map(
        lambda t: (t[0], t[0] + t[1])),
    max_size=12)


def to_set(pairs):
    s = IntervalSet()
    for lo, hi in pairs:
        s.add(lo, hi)
    return s


def to_arrays(s: IntervalSet):
    return (np.asarray(s._los, dtype=np.int64),
            np.asarray(s._his, dtype=np.int64))


def make_graph(segments, edges, accesses):
    g = SegmentGraph()
    segs = [g.new_segment(thread_id=i % 4, task=None, kind="task")
            for i in range(segments)]
    for i, j in edges:
        g.add_edge(segs[i], segs[j])
    for idx, lo, hi, w in accesses:
        segs[idx].record(lo, hi - lo, w, None)
    return g


def keys(cands):
    return sorted((c.key(), tuple(c.ranges.pairs())) for c in cands)


class TestPrimitives:
    @given(ranges_strategy)
    @settings(max_examples=200, deadline=None)
    def test_coalesce_matches_intervalset(self, raw):
        oracle = to_set(raw)
        los = np.asarray([lo for lo, _ in raw], dtype=np.int64)
        his = np.asarray([hi for _, hi in raw], dtype=np.int64)
        got_los, got_his = coalesce_arrays(los, his)
        assert got_los.tolist() == oracle._los
        assert got_his.tolist() == oracle._his

    @given(ranges_strategy, ranges_strategy)
    @settings(max_examples=200, deadline=None)
    def test_intersect_matches_intervalset(self, raw_a, raw_b):
        a, b = to_set(raw_a), to_set(raw_b)
        oracle = a.intersection(b)
        los, his = intersect_arrays(*to_arrays(a), *to_arrays(b))
        assert los.tolist() == oracle._los
        assert his.tolist() == oracle._his

    @given(ranges_strategy, ranges_strategy)
    @settings(max_examples=200, deadline=None)
    def test_union_matches_intervalset(self, raw_a, raw_b):
        a, b = to_set(raw_a), to_set(raw_b)
        oracle = to_set(list(a.pairs()) + list(b.pairs()))
        los, his = union_arrays(*to_arrays(a), *to_arrays(b))
        assert los.tolist() == oracle._los
        assert his.tolist() == oracle._his

    @given(ranges_strategy, ranges_strategy, ranges_strategy, ranges_strategy)
    @settings(max_examples=150, deadline=None)
    def test_conflict_matches_python_formula(self, w1, r1, w2, r2):
        from repro.core.analysis import _conflict_ranges
        g = make_graph(2, [], [])
        s1, s2 = g.segments
        for lo, hi in w1:
            s1.record(lo, hi - lo, True, None)
        for lo, hi in r1:
            s1.record(lo, hi - lo, False, None)
        for lo, hi in w2:
            s2.record(lo, hi - lo, True, None)
        for lo, hi in r2:
            s2.record(lo, hi - lo, False, None)
        oracle = _conflict_ranges(s1, s2)
        got = conflict_ranges_arrays(s1.np_arrays(), s2.np_arrays())
        if not oracle:
            assert got is None
        else:
            assert got.pairs() == oracle.pairs()

    def test_build_segment_arrays_precomputes_rw(self):
        r, w = to_set([(0, 8), (16, 24)]), to_set([(8, 12)])
        arr = build_segment_arrays(r, w)
        assert arr[4].tolist() == [0, 16]       # rw = r ∪ w coalesced
        assert arr[5].tolist() == [12, 24]


@st.composite
def graph_strategy(draw):
    n = draw(st.integers(2, 8))
    edges = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1))
        .filter(lambda t: t[0] < t[1]), max_size=8))
    accesses = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, 60),
                  st.integers(1, 16), st.booleans()),
        min_size=1, max_size=24))
    return n, edges, [(i, lo, lo + sz, w) for i, lo, sz, w in accesses]


class TestKernelParity:
    @given(graph_strategy())
    @settings(max_examples=120, deadline=None)
    def test_numpy_equals_python_on_random_graphs(self, spec):
        n, edges, accesses = spec
        g1 = make_graph(n, edges, accesses)
        g2 = make_graph(n, edges, accesses)
        assert keys(find_races_indexed(g1, kernel="python")) == \
            keys(find_races_indexed(g2, kernel="numpy"))

    def test_supervised_numpy_equals_python(self):
        accesses = [(i, (i * 7) % 40, (i * 7) % 40 + 12, i % 2 == 0)
                    for i in range(12)]
        g1 = make_graph(12, [(0, 1), (2, 3)], accesses)
        g2 = make_graph(12, [(0, 1), (2, 3)], accesses)
        a = find_races_supervised(g1, workers=2, kernel="python")
        b = find_races_supervised(g2, workers=2, kernel="numpy")
        assert keys(a.candidates) == keys(b.candidates)

    def test_unbatched_fallback_matches(self, monkeypatch):
        # huge addresses overflow the per-pair window: the context must fall
        # back to the per-pair loop and still agree with the oracle
        big = 1 << 50
        accesses = [(0, big, big + 8, True), (1, big + 4, big + 12, True)]
        g1 = make_graph(2, [], accesses)
        g2 = make_graph(2, [], accesses)
        segs = [s for s in g2.segments if s.has_accesses]
        ctx = KernelContext(g2, segs)
        assert not ctx._batched
        assert keys(find_races_indexed(g1, kernel="python")) == \
            keys(find_races_indexed(g2, kernel="numpy"))

    def test_label_overflow_falls_back(self):
        # int64-overflowing order-maintenance labels must not be gathered
        g = make_graph(2, [], [(0, 0, 8, True), (1, 0, 8, True)])
        g._hb_labels = ({s.id: (1 << 80) + s.id for s in g.segments},
                        {s.id: (1 << 81) + s.id for s in g.segments})
        segs = [s for s in g.segments if s.has_accesses]
        ctx = KernelContext(g, segs)
        assert ctx._e is None


class TestResolveKernel:
    def _graph(self):
        return make_graph(2, [], [(0, 0, 8, True), (1, 0, 8, True)])

    def test_explicit_python(self):
        assert resolve_kernel("python", self._graph(), 10_000) == "python"

    def test_auto_small_pair_count_stays_python(self):
        assert resolve_kernel("auto", self._graph(),
                              npkernel.AUTO_MIN_PAIRS - 1) == "python"

    def test_auto_large_pair_count_picks_numpy(self):
        assert resolve_kernel("auto", self._graph(),
                              npkernel.AUTO_MIN_PAIRS) == "numpy"

    def test_explicit_numpy_ignores_pair_count(self):
        assert resolve_kernel("numpy", self._graph(), 1) == "numpy"

    def test_checked_hb_mode_forces_python(self):
        g = self._graph()
        g.hb_mode = "checked"
        assert resolve_kernel("numpy", g, 10_000) == "python"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            resolve_kernel("cuda", self._graph(), 10)

    def test_numpy_absent_degrades(self, monkeypatch):
        monkeypatch.setattr(npkernel, "HAVE_NUMPY", False)
        assert resolve_kernel("numpy", self._graph(), 10_000) == "python"
        assert resolve_kernel("auto", self._graph(), 10_000) == "python"
