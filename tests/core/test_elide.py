"""Tests for compile-time access elision (``repro.vex.elide``).

The soundness contract under test: a site is elided only when the runtime
:class:`SuppressionEngine` would have suppressed every conflict the site
could produce — so turning elision on must never change the report set, and
``--break-suppression``-style toggles must disable the matching elisions.
"""

import itertools

import pytest

from repro.core.suppress import SuppressionConfig, SuppressionEngine
from repro.core.tool import TaskgrindOptions
from repro.vex.elide import (ALLOC_LOCAL, PRIVATE_CLASSES, SHARED,
                             STACK_LOCAL, TLS_LOCAL, UNKNOWN, ElisionPlan,
                             StaticSite, join)


class TestLattice:
    def test_unknown_is_bottom(self):
        for k in (UNKNOWN, STACK_LOCAL, TLS_LOCAL, ALLOC_LOCAL, SHARED):
            assert join(UNKNOWN, k) == k
            assert join(k, UNKNOWN) == k

    def test_shared_is_top(self):
        for k in (UNKNOWN, STACK_LOCAL, TLS_LOCAL, ALLOC_LOCAL, SHARED):
            assert join(SHARED, k) == SHARED
            assert join(k, SHARED) == SHARED

    def test_idempotent(self):
        for k in (UNKNOWN, STACK_LOCAL, TLS_LOCAL, ALLOC_LOCAL, SHARED):
            assert join(k, k) == k

    def test_distinct_private_classes_escalate(self):
        for a, b in itertools.permutations(PRIVATE_CLASSES, 2):
            assert join(a, b) == SHARED

    def test_commutative_associative(self):
        classes = (UNKNOWN, STACK_LOCAL, TLS_LOCAL, ALLOC_LOCAL, SHARED)
        for a, b in itertools.product(classes, repeat=2):
            assert join(a, b) == join(b, a)
        for a, b, c in itertools.product(classes, repeat=3):
            assert join(join(a, b), c) == join(a, join(b, c))


class TestPlanGating:
    TOGGLE_FOR = {
        STACK_LOCAL: "suppress_stack",
        TLS_LOCAL: "suppress_tls",
        ALLOC_LOCAL: "suppress_recycling",
    }

    def test_each_class_follows_its_toggle(self):
        for klass, toggle in self.TOGGLE_FOR.items():
            on = ElisionPlan(SuppressionConfig())
            off = ElisionPlan(SuppressionConfig(**{toggle: False}))
            assert on.site_elidable(klass)
            assert not off.site_elidable(klass)
            # other classes stay elidable under a foreign toggle
            for other in PRIVATE_CLASSES:
                if other != klass:
                    assert off.site_elidable(other)

    def test_shared_and_unknown_never_elidable(self):
        plan = ElisionPlan(SuppressionConfig())
        assert not plan.site_elidable(SHARED)
        assert not plan.site_elidable(UNKNOWN)

    def test_engine_delegates(self):
        eng = SuppressionEngine(machine=None,
                                config=SuppressionConfig(suppress_tls=False))
        assert eng.site_elidable(STACK_LOCAL)
        assert not eng.site_elidable(TLS_LOCAL)

    def test_declare_returns_token_only_when_elided(self):
        plan = ElisionPlan(SuppressionConfig(suppress_stack=False))
        tls = plan.declare("t", TLS_LOCAL, symbol="f", file="f.c", line=3)
        stk = plan.declare("s", STACK_LOCAL, symbol="f", file="f.c", line=4)
        assert isinstance(tls, StaticSite) and tls.klass == TLS_LOCAL
        assert stk is None
        # both declarations are recorded for the stats doc
        assert len(plan.sites) == 2
        assert plan.elided_sites == 1

    def test_disabled_plan_elides_nothing(self):
        plan = ElisionPlan(SuppressionConfig(), enabled=False)
        assert plan.declare("t", TLS_LOCAL, symbol="f", file="", line=0) \
            is None
        assert plan.elided_sites == 0

    def test_note_accumulates_and_stats_doc(self):
        plan = ElisionPlan(SuppressionConfig())
        site = plan.declare("buf", ALLOC_LOCAL, symbol="work",
                            file="w.c", line=9)
        plan.note(site, 3)
        plan.note(site)
        doc = plan.stats_doc()
        assert doc["enabled"] is True
        assert doc["elided_sites"] == 1
        assert plan.elided_accesses == 4
        (entry,) = doc["sites"]
        assert entry["name"] == "buf" and entry["class"] == ALLOC_LOCAL
        assert entry["elided"] is True and entry["accesses"] == 4


def report_keys(tool):
    return sorted((r.key(), tuple(r.ranges.pairs())) for r in tool.reports)


def stack_private_body(env):
    def task_body(tv):
        z = env.ctx.stack_var("z", 8, elem=8, private=True)
        z.write(0)
        z.read(0)

    def make():
        for _ in range(2):
            env.task(task_body, annotate_deferrable=True)
        env.taskwait()
    env.parallel_single(make, num_threads=1)


def tls_private_body(env):
    def task_body(tv):
        t = env.ctx.tls_var("t", 8, elem=8, private=True)
        t.write(0)
        t.read(0)

    def make():
        for _ in range(2):
            env.task(task_body, annotate_deferrable=True)
        env.taskwait()
    env.parallel_single(make, num_threads=1)


def alloc_private_body(env):
    def task_body(tv):
        x = env.ctx.malloc(8, name="scratch", elem=8, private=True)
        x.write(0)
        x.read(0)
        env.ctx.free(x)

    def make():
        for _ in range(2):
            env.task(task_body, annotate_deferrable=True)
        env.taskwait()
    env.parallel_single(make, num_threads=1)


def shared_racy_body(env):
    # parent-frame variable written by both tasks: a real race that no
    # elision (and no runtime suppression) may remove
    y = env.ctx.stack_var("y", 8, elem=8)

    def make():
        for _ in range(2):
            env.task(lambda tv: y.write(0), annotate_deferrable=True)
        env.taskwait()
    env.parallel_single(make, num_threads=1)


PRIVATE_BODIES = [("stack", stack_private_body),
                  ("tls", tls_private_body),
                  ("alloc", alloc_private_body)]


class TestEndToEnd:
    @pytest.mark.parametrize("klass,body",
                             PRIVATE_BODIES, ids=[k for k, _ in PRIVATE_BODIES])
    def test_elision_fires_and_reports_unchanged(self, run_taskgrind,
                                                 klass, body):
        on = TaskgrindOptions()
        off = TaskgrindOptions()
        off.elide_sites = False
        tool_on, _ = run_taskgrind(body, nthreads=1, options=on)
        tool_off, _ = run_taskgrind(body, nthreads=1, options=off)
        assert report_keys(tool_on) == report_keys(tool_off) == []
        supp_on = tool_on.stats()["suppress"]
        assert supp_on["elided_sites"] >= 1
        assert supp_on["elided_accesses"] >= 1
        assert any(s["class"] == klass and s["elided"]
                   for s in supp_on["elision"]["sites"])
        assert tool_off.stats()["suppress"]["elided_accesses"] == 0

    @pytest.mark.parametrize("klass,body",
                             PRIVATE_BODIES, ids=[k for k, _ in PRIVATE_BODIES])
    def test_broken_suppression_disables_matching_elision(self, run_taskgrind,
                                                          klass, body):
        """Elision ⊆ runtime suppression: with the class's runtime toggle
        off, the site must NOT be elided — accesses flow to the normal
        recording path exactly as before the elision layer existed."""
        toggle = {"stack": "suppress_stack", "tls": "suppress_tls",
                  "alloc": "suppress_recycling"}[klass]
        broken = TaskgrindOptions()
        setattr(broken.suppression, toggle, False)
        broken_off = TaskgrindOptions()
        setattr(broken_off.suppression, toggle, False)
        broken_off.elide_sites = False
        tool, _ = run_taskgrind(body, nthreads=1, options=broken)
        tool_off, _ = run_taskgrind(body, nthreads=1, options=broken_off)
        supp = tool.stats()["suppress"]
        assert not any(s["class"] == klass and s["elided"]
                       for s in supp["elision"]["sites"])
        # verdict parity with elision fully off under the same broken config
        assert report_keys(tool) == report_keys(tool_off)

    def test_shared_conflict_survives_elision(self, run_taskgrind):
        tool, _ = run_taskgrind(shared_racy_body, nthreads=1)
        assert len(tool.reports) >= 1

    def test_stats_schema_fields_present(self, run_taskgrind):
        tool, _ = run_taskgrind(stack_private_body, nthreads=1)
        doc = tool.stats()
        supp = doc["suppress"]
        assert {"elided_sites", "elided_accesses", "elision"} <= supp.keys()
        assert doc["analysis"]["kernel"] == "auto"
        for site in supp["elision"]["sites"]:
            assert {"name", "class", "elided", "accesses"} <= site.keys()

    def test_elision_subset_of_runtime_suppression(self, run_taskgrind):
        """Property over the full toggle cube: for every combination of the
        three runtime toggles, elide-on and elide-off agree on reports for
        every private fixture."""
        toggles = ("suppress_stack", "suppress_tls", "suppress_recycling")
        for bits in itertools.product((True, False), repeat=3):
            for _, body in PRIVATE_BODIES:
                opts = {}
                for name, val in zip(toggles, bits):
                    opts[name] = val
                on = TaskgrindOptions()
                off = TaskgrindOptions()
                off.elide_sites = False
                for name, val in opts.items():
                    setattr(on.suppression, name, val)
                    setattr(off.suppression, name, val)
                tool_on, _ = run_taskgrind(body, nthreads=1, options=on)
                tool_off, _ = run_taskgrind(body, nthreads=1, options=off)
                assert report_keys(tool_on) == report_keys(tool_off), \
                    f"divergence with toggles={opts}"
