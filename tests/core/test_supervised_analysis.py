"""Supervised parallel analysis + the memory-budget degradation path."""

import pytest

import repro.core.analysis as analysis_mod
from repro.core.analysis import (find_races_naive, find_races_parallel,
                                 find_races_supervised)
from repro.core.reports import format_report
from repro.core.segments import SegmentBuilder
from repro.core.tool import TaskgrindOptions, TaskgrindTool
from repro.faults.inject import inject_plan
from repro.faults.plan import FaultPlan
from repro.machine.machine import Machine
from repro.openmp.api import make_env


def racy_listing(env):
    ctx = env.ctx
    x = ctx.malloc(8, line=3, name="x")
    y = ctx.malloc(8, line=4, name="y")

    def single_body():
        ctx.line(8)
        env.task(lambda tv: x.write(0, line=9), name="t8")
        ctx.line(11)
        env.task(lambda tv: x.write(0, line=12), name="t11")
        ctx.line(14)
        env.task(lambda tv: y.write(0, line=15), name="t14")
        ctx.line(17)
        env.task(lambda tv: y.write(0, line=18), name="t17")

    env.parallel_single(single_body)


def _cand_keys(candidates):
    return {(c.s1.id, c.s2.id) for c in candidates}


@pytest.fixture
def graph(run_taskgrind):
    tool, _ = run_taskgrind(racy_listing)
    return tool.builder.graph


@pytest.fixture
def tiny_chunks(monkeypatch):
    """One candidate pair per chunk, so a single poisoned chunk cannot
    shadow the whole pair space."""
    monkeypatch.setattr(analysis_mod, "_PARALLEL_CHUNK", 1)


class TestSupervisor:
    def test_fault_free_run_is_complete(self, graph):
        partial = find_races_supervised(graph, workers=2)
        assert partial.complete
        assert partial.unchecked_pairs == 0
        assert partial.quarantined == []
        assert _cand_keys(partial.candidates) \
            == _cand_keys(find_races_naive(graph))

    def test_worker_exception_keeps_completed_chunks(self, graph,
                                                     tiny_chunks):
        """The satellite regression: one poisoned chunk must cost exactly
        that chunk, not the whole analysis."""
        full = _cand_keys(find_races_naive(graph))
        with inject_plan(FaultPlan.single("worker-exc", 0)):
            partial = find_races_supervised(graph, workers=2, max_retries=1)
        assert not partial.complete
        assert [q.index for q in partial.quarantined] == [0]
        assert partial.unchecked_pairs == 1
        assert partial.chunks_ok == partial.chunks_total - 1
        kept = _cand_keys(partial.candidates)
        assert kept <= full
        assert len(kept) >= len(full) - 1    # at most the poisoned pair lost

    def test_retry_recovers_a_transient_fault(self, graph, tiny_chunks):
        full = _cand_keys(find_races_naive(graph))
        with inject_plan(FaultPlan.single("worker-exc", 0, times=1)):
            partial = find_races_supervised(graph, workers=2, max_retries=2)
        assert partial.complete
        assert partial.retries >= 1
        assert _cand_keys(partial.candidates) == full

    def test_hang_hits_deadline_and_quarantines(self, graph, tiny_chunks):
        with inject_plan(FaultPlan.single("worker-hang", 0, seconds=0.5)):
            partial = find_races_supervised(graph, workers=2,
                                            deadline_s=0.05, max_retries=0)
        assert partial.deadline_hits >= 1
        assert not partial.complete
        assert any("deadline" in q.error for q in partial.quarantined)

    def test_parallel_entry_point_delegates(self, graph, tiny_chunks):
        """find_races_parallel rides the supervisor: a transient worker
        death no longer discards every completed chunk."""
        full = _cand_keys(find_races_naive(graph))
        with inject_plan(FaultPlan.single("worker-exc", 0, times=1)):
            candidates = find_races_parallel(graph, workers=2)
        assert _cand_keys(candidates) == full

    def test_partial_analysis_document(self, graph, tiny_chunks):
        with inject_plan(FaultPlan.single("worker-exc", 0)):
            partial = find_races_supervised(graph, workers=2, max_retries=0)
        doc = partial.to_dict()
        assert doc["schema"] == "taskgrind-partial-analysis/1"
        assert doc["complete"] is False
        assert doc["pairs"]["unchecked"] == 1
        assert doc["chunks"]["quarantined"] == 1
        assert "quarantined" in partial.summary()


class TestToolIntegration:
    def _run(self, options, prime=None):
        machine = Machine(seed=0)
        tool = TaskgrindTool(options)
        if prime is not None:
            prime(tool)
        machine.add_tool(tool)
        env = make_env(machine, nthreads=4)
        env.rt.ompt.register(tool.make_ompt_shim())

        def main():
            with env.ctx.function("main", line=1):
                racy_listing(env)
        machine.run(main)
        return tool, tool.finalize()

    def test_incomplete_analysis_stamps_reports(self, tiny_chunks):
        opts = TaskgrindOptions(analysis="parallel", analysis_workers=2,
                                analysis_max_retries=0)
        with inject_plan(FaultPlan.single("worker-exc", 0)):
            tool, reports = self._run(opts)
        assert tool.partial_analysis is not None
        assert not tool.partial_analysis.complete
        assert reports                       # completed chunks still report
        assert all(any("incomplete analysis" in n for n in r.notes)
                   for r in reports)
        assert "WARNING: incomplete analysis" in format_report(reports[0])
        resilience = tool.stats()["resilience"]
        assert resilience["analysis"]["complete"] is False

    def test_memory_budget_trips_to_coarse(self):
        def prime(tool):
            tool._budget_check_every = 1     # deterministic on a tiny run
        opts = TaskgrindOptions(memory_budget=1)
        tool, reports = self._run(opts, prime=prime)
        assert tool.budget_tripped_at is not None
        assert tool.builder.coarse_granule \
            == opts.memory_budget_granule == 64
        assert reports                       # over-approximation keeps races
        assert all(any("memory budget" in n for n in r.notes)
                   for r in reports)
        resilience = tool.stats()["resilience"]
        assert resilience["budget_tripped_at"] == tool.budget_tripped_at
        assert resilience["coarse_granule"] == 64

    def test_no_budget_means_no_notes(self):
        tool, reports = self._run(TaskgrindOptions())
        assert tool.budget_tripped_at is None
        assert all(r.notes == () for r in reports)


class TestCoarseRecording:
    def test_coarse_mode_widens_and_is_one_way(self):
        machine = Machine(seed=0)
        builder = SegmentBuilder(machine)
        assert builder.coarse_granule == 0
        builder.enter_coarse_mode(64)
        assert builder.coarse_granule == 64
        builder.enter_coarse_mode(16)        # narrowing is ignored
        assert builder.coarse_granule == 64

    def test_granule_must_be_power_of_two(self):
        machine = Machine(seed=0)
        builder = SegmentBuilder(machine)
        with pytest.raises(AssertionError):
            builder.enter_coarse_mode(48)
