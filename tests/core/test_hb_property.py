"""Property tests for happens-before structure over random shaped programs.

Programs are random sequences of parallel regions; each region's single
creates random batches of tasks separated by optional taskwaits.  Structural
invariants that must hold for ANY such program:

* Eq. (1): every access segment of region k happens-before every access
  segment of region k+1 (regions are fork/join-separated);
* within a region, tasks created after a taskwait happen-after every task
  created before it (same parent);
* tasks within one batch (no taskwait between) are pairwise independent;
* the graph is acyclic and every segment is closed at the end.
"""

from typing import List

from hypothesis import given, settings, strategies as st


# program shape: list of regions; each region = list of batch sizes
# (a taskwait separates consecutive batches)
shape = st.lists(st.lists(st.integers(1, 3), min_size=1, max_size=3),
                 min_size=1, max_size=3)


def build_program(regions: List[List[int]]):
    """Return (body, labels) where labels[(r, b, i)] = task name."""
    labels = {}

    def body(env):
        ctx = env.ctx
        scratch = ctx.global_var("hb_scratch", 8 * 64, elem=8)
        slot = [0]

        for r, batches in enumerate(regions):
            def single_body(r=r, batches=batches):
                for b, count in enumerate(batches):
                    for i in range(count):
                        name = f"t.r{r}.b{b}.{i}"
                        labels[(r, b, i)] = name
                        my_slot = slot[0]
                        slot[0] += 1

                        def task_body(tv, my_slot=my_slot):
                            scratch.write(my_slot)
                        env.task(task_body, name=name,
                                 annotate_deferrable=True)
                    if b < len(batches) - 1:
                        env.taskwait()
                env.taskwait()
            env.parallel_single(single_body)
    return body, labels


class TestHbShapeProperties:
    @given(shape)
    @settings(max_examples=40, deadline=None)
    def test_structure(self, regions):
        # hypothesis + fixtures don't mix; build the runner inline
        from tests.core.conftest import BuilderObserver
        from repro.machine.machine import Machine
        from repro.openmp.api import make_env
        from repro.vex.tool import Tool

        body, labels = build_program(regions)
        machine = Machine(seed=1)
        env = make_env(machine, nthreads=4)
        obs = BuilderObserver(machine)
        env.rt.ompt.register(obs)

        class Rec(Tool):
            name = "rec"
            is_dbi = True

            def on_access(self, event):
                if event.symbol.name.startswith((".omp_task_prologue",
                                                 "__kmp")):
                    return
                obs.builder.record_access(event.thread_id, event.addr,
                                          event.size, event.is_write,
                                          event.loc)

        machine.add_tool(Rec())

        def main():
            with env.ctx.function("main", line=1):
                body(env)
        machine.run(main)

        graph = obs.builder.graph
        graph.check_acyclic()
        assert all(not s.open or s.kind == "serial"
                   for s in graph.segments)

        def seg_of(name):
            for s in graph.segments:
                if s.task is not None and s.task.symbol_name == name:
                    return s
            raise AssertionError(f"no segment for {name}")

        # Eq. (1): cross-region ordering
        for r in range(len(regions) - 1):
            a = seg_of(labels[(r, 0, 0)])
            b = seg_of(labels[(r + 1, 0, 0)])
            assert graph.happens_before(a, b)

        for r, batches in enumerate(regions):
            # taskwait orders consecutive batches
            for b in range(len(batches) - 1):
                for i in range(batches[b]):
                    for j in range(batches[b + 1]):
                        assert graph.happens_before(
                            seg_of(labels[(r, b, i)]),
                            seg_of(labels[(r, b + 1, j)]))
            # batch members are pairwise independent
            for b, count in enumerate(batches):
                for i in range(count):
                    for j in range(i + 1, count):
                        assert graph.independent(
                            seg_of(labels[(r, b, i)]),
                            seg_of(labels[(r, b, j)]))
