"""Tests for the Section IV false-positive suppressions."""


from repro.core.suppress import SuppressionConfig, SuppressionEngine
from repro.core.tool import TaskgrindOptions
from repro.machine.debuginfo import DebugInfo


class TestSymbolFilter:
    def make(self, **kw):
        return SuppressionEngine(machine=None, config=SuppressionConfig(**kw))

    def test_default_ignore_list_drops_kmp(self):
        eng = self.make()
        assert eng.symbol_filtered("__kmp_fast_allocate")
        assert eng.symbol_filtered("__kmpc_omp_task_alloc")
        assert not eng.symbol_filtered("main")
        assert not eng.symbol_filtered("memcpy")   # the paper's gap!

    def test_instrument_list_whitelists(self):
        eng = self.make(instrument_list=("lulesh*",))
        assert not eng.symbol_filtered("lulesh_main")
        assert eng.symbol_filtered("main")

    def test_ignore_wins_inside_instrument_list(self):
        eng = self.make(instrument_list=("*",), ignore_list=("__kmp",))
        assert eng.symbol_filtered("__kmp_barrier")
        assert not eng.symbol_filtered("main")

    def test_prefix_semantics(self):
        assert DebugInfo.matches_any("__kmp_join_barrier", ("__kmp",))
        assert not DebugInfo.matches_any("kmp_join", ("__kmp",))
        assert DebugInfo.matches_any("foo_bar", ("f?o_*",))


class TestRecyclingSuppression:
    def test_free_replacement_installed_by_default(self, run_taskgrind):
        def body(env):
            x = env.ctx.malloc(8)
            env.ctx.free(x)
        tool, machine = run_taskgrind(body)
        assert machine.replacements.is_replaced("free")
        assert machine.allocator.retained_bytes > 0

    def test_listing1_no_false_positive(self, run_taskgrind):
        """Listing 1: two tasks malloc/write/free the same-size block."""
        def body(env):
            def task_body(tv):
                x = env.ctx.malloc(4)
                x.write(0)
                env.ctx.free(x)

            def make():
                for _ in range(2):
                    env.task(task_body, annotate_deferrable=True)
                env.taskwait()
            env.parallel_single(make, num_threads=1)

        tool, _ = run_taskgrind(body, nthreads=1)
        assert tool.reports == []

    def test_listing1_false_positive_without_suppression(self, run_taskgrind):
        """Ablation: recycling suppression off -> the paper's FP appears."""
        opts = TaskgrindOptions()
        opts.suppression.suppress_recycling = False

        def body(env):
            def task_body(tv):
                x = env.ctx.malloc(4)
                x.write(0)
                env.ctx.free(x)

            def make():
                for _ in range(2):
                    env.task(task_body, annotate_deferrable=True)
                env.taskwait()
            env.parallel_single(make, num_threads=1)

        tool, machine = run_taskgrind(body, nthreads=1, options=opts)
        assert machine.allocator.recycled_allocs >= 1
        assert len(tool.reports) >= 1

    def test_fast_arena_not_covered(self, run_taskgrind):
        """The future-work limitation: __kmp_fast_allocate still recycles."""
        def body(env):
            k = env.ctx.stack_var("k", 8, elem=8)

            def make():
                for n in range(2):
                    k.write(0, n)
                    env.task(lambda tv: tv.private_value("k"),
                             firstprivate={"k": k}, annotate_deferrable=True)
                env.taskwait()
            env.parallel_single(make, num_threads=4)

        tool, machine = run_taskgrind(body, nthreads=4)
        assert machine.fast_arena.recycled_allocs >= 1


class TestStackSuppression:
    def test_own_frame_aliasing_suppressed(self, run_taskgrind):
        """Listing 3 / TMB 1003: sequential tasks' own locals alias."""
        def body(env):
            def task_body(tv):
                z = env.ctx.stack_var("z", 8, elem=8)
                z.write(0)

            def make():
                for _ in range(2):
                    env.task(task_body, annotate_deferrable=True)
                env.taskwait()
            env.parallel_single(make, num_threads=1)

        tool, _ = run_taskgrind(body, nthreads=1)
        assert tool.reports == []
        assert tool.suppressor.stats.stack_suppressed >= 1

    def test_parent_frame_conflict_not_suppressed(self, run_taskgrind):
        """TMB 1001: a real race on the parent's stack var is kept."""
        def body(env):
            y = env.ctx.stack_var("y", 8, elem=8)

            def make():
                for _ in range(2):
                    env.task(lambda tv: y.write(0), annotate_deferrable=True)
                env.taskwait()
            env.parallel_single(make, num_threads=1)

        tool, _ = run_taskgrind(body, nthreads=1)
        assert len(tool.reports) >= 1

    def test_ablation_flag_restores_fp(self, run_taskgrind):
        opts = TaskgrindOptions()
        opts.suppression.suppress_stack = False

        def body(env):
            def task_body(tv):
                z = env.ctx.stack_var("z", 8, elem=8)
                z.write(0)

            def make():
                for _ in range(2):
                    env.task(task_body, annotate_deferrable=True)
                env.taskwait()
            env.parallel_single(make, num_threads=1)

        tool, _ = run_taskgrind(body, nthreads=1, options=opts)
        assert len(tool.reports) >= 1


class TestTlsSuppression:
    def _tls_body(self, env, n_tasks=2):
        def task_body(tv):
            v = env.ctx.tls_var("tlx", 8, elem=8)
            v.write(0)

        def make():
            for _ in range(n_tasks):
                env.task(task_body, annotate_deferrable=True)
            env.taskwait()
        env.parallel_single(make, num_threads=1)

    def test_same_thread_same_dtv_suppressed(self, run_taskgrind):
        tool, _ = run_taskgrind(lambda env: self._tls_body(env), nthreads=1)
        assert tool.reports == []
        assert tool.suppressor.stats.tls_suppressed >= 1

    def test_ablation_flag_restores_fp(self, run_taskgrind):
        opts = TaskgrindOptions()
        opts.suppression.suppress_tls = False
        tool, _ = run_taskgrind(lambda env: self._tls_body(env), nthreads=1,
                                options=opts)
        assert len(tool.reports) >= 1

    def test_intra_segment_dtv_churn_survives(self, run_taskgrind):
        """The paper's stated limitation: a dynamic TLS block allocated and
        freed within the segment is absent from the snapshot, so the
        conflict is NOT suppressed."""
        def body(env):
            machine = env.ctx.machine
            addr_box = {}

            def task_body(tv):
                tid = machine.scheduler.current_id()
                mod = machine.tls.open_module(tid, 64)
                base = machine.tls.module_base(tid, mod)
                addr_box.setdefault("addr", base)
                # both tasks run on thread 0 at 1 thread: same base
                env.ctx.write_mem(addr_box["addr"], 8)
                machine.tls.close_module(tid, mod)

            def make():
                for _ in range(2):
                    env.task(task_body, annotate_deferrable=True)
                env.taskwait()
            env.parallel_single(make, num_threads=1)

        tool, _ = run_taskgrind(body, nthreads=1)
        # the conflict survives (paper: "a false-positive would still be
        # reported"), and the generation counter flagged the churn
        assert len(tool.reports) >= 1


class TestEndToEndCounts:
    def test_naive_lulesh_has_many_candidates(self, run_taskgrind):
        """Section IV motivation: with every suppression off, even a tiny
        correct program floods candidate conflicts."""
        opts = TaskgrindOptions()
        opts.suppression.suppress_recycling = False
        opts.suppression.suppress_stack = False
        opts.suppression.suppress_tls = False
        opts.suppression.ignore_list = ()

        def body(env):
            def task_body(tv):
                z = env.ctx.stack_var("z", 8, elem=8)
                z.write(0)
                v = env.ctx.tls_var("tly", 8, elem=8)
                v.write(0)
                x = env.ctx.malloc(8)
                x.write(0)
                env.ctx.free(x)

            def make():
                for _ in range(4):
                    env.task(task_body, annotate_deferrable=True)
                env.taskwait()
            env.parallel_single(make, num_threads=1)

        naive_tool, _ = run_taskgrind(body, nthreads=1, options=opts)
        clean_tool, _ = run_taskgrind(body, nthreads=1)
        assert len(naive_tool.reports) > 3 * max(1, len(clean_tool.reports))
        assert clean_tool.reports == []
