"""Tests for suppression files and machine-readable report output."""

import json

import pytest

from repro.core.reports import report_to_dict, reports_to_json
from repro.core.suppfile import (Suppression, SuppressionFile,
                                 load_suppressions, parse_suppressions)
from repro.core.tool import TaskgrindOptions
from repro.errors import ToolError


def listing4(env):
    ctx = env.ctx
    x = ctx.malloc(8, line=3, name="x")

    def single_body():
        ctx.line(8)
        env.task(lambda tv: x.write(0, line=9), name="t8")
        ctx.line(11)
        env.task(lambda tv: x.write(0, line=12), name="t11")

    env.parallel_single(single_body)


@pytest.fixture
def one_report(run_taskgrind):
    tool, machine = run_taskgrind(listing4)
    assert len(tool.reports) == 1
    return tool.reports[0]


class TestParsing:
    def test_basic_entry(self):
        supp = parse_suppressions("""
        {
           my-supp
           Taskgrind:Race
           seg:main.c:*
        }
        """)
        assert len(supp.entries) == 1
        e = supp.entries[0]
        assert e.name == "my-supp"
        assert e.seg_patterns == ("main.c:*",)

    def test_comments_and_blank_lines(self):
        supp = parse_suppressions("""
        # a comment
        {
           s1          # trailing comment
           seg:a.c:1
        }

        {
           s2
           seg:b.c:*
           alloc:b.c:3
           fun:mai?
        }
        """)
        assert [e.name for e in supp.entries] == ["s1", "s2"]
        assert supp.entries[1].alloc_pattern == "b.c:3"
        assert supp.entries[1].fun_patterns == ("mai?",)

    def test_unterminated_rejected(self):
        with pytest.raises(ToolError, match="unterminated"):
            parse_suppressions("{\n name\n seg:x\n")

    def test_missing_brace_rejected(self):
        with pytest.raises(ToolError, match="expected"):
            parse_suppressions("name-without-braces\n")

    def test_too_many_seg_patterns(self):
        with pytest.raises(ToolError, match="at most two"):
            parse_suppressions("{\n s\n seg:a\n seg:b\n seg:c\n}")

    def test_empty_entry_rejected(self):
        with pytest.raises(ToolError, match="empty"):
            parse_suppressions("{\n}\n")


class TestMatching:
    def test_single_pattern_covers_both_labels(self, one_report):
        e = Suppression(name="s", seg_patterns=("main.c:*",))
        assert e.matches(one_report)

    def test_two_patterns_either_order(self, one_report):
        fwd = Suppression(name="s", seg_patterns=("main.c:8", "main.c:11"))
        rev = Suppression(name="s", seg_patterns=("main.c:11", "main.c:8"))
        assert fwd.matches(one_report)
        assert rev.matches(one_report)

    def test_non_matching_pattern(self, one_report):
        e = Suppression(name="s", seg_patterns=("other.c:*",))
        assert not e.matches(one_report)

    def test_alloc_pattern(self, one_report):
        hit = Suppression(name="s", alloc_pattern="main.c:3")
        miss = Suppression(name="s", alloc_pattern="main.c:99")
        assert hit.matches(one_report)
        assert not miss.matches(one_report)

    def test_fun_pattern_over_alloc_stack(self, one_report):
        hit = Suppression(name="s", fun_patterns=("main",))
        miss = Suppression(name="s", fun_patterns=("lib_*",))
        assert hit.matches(one_report)
        assert not miss.matches(one_report)

    def test_filter_counts_hits(self, one_report):
        supp = SuppressionFile([Suppression(name="s",
                                            seg_patterns=("main.c:*",))])
        kept, muted = supp.filter([one_report])
        assert kept == [] and muted == 1
        assert supp.used_entries()[0].hits == 1


class TestToolIntegration:
    def test_suppression_file_option(self, run_taskgrind, tmp_path):
        path = tmp_path / "taskgrind.supp"
        path.write_text("{\n lst4\n seg:main.c:*\n}\n")
        opts = TaskgrindOptions(suppression_file=str(path))
        tool, _ = run_taskgrind(listing4, options=opts)
        assert tool.reports == []
        assert tool.file_suppressed == 1

    def test_non_matching_file_keeps_reports(self, run_taskgrind, tmp_path):
        path = tmp_path / "taskgrind.supp"
        path.write_text("{\n other\n seg:other.c:*\n}\n")
        opts = TaskgrindOptions(suppression_file=str(path))
        tool, _ = run_taskgrind(listing4, options=opts)
        assert len(tool.reports) == 1
        assert tool.file_suppressed == 0

    def test_load_from_disk(self, tmp_path):
        path = tmp_path / "x.supp"
        path.write_text("{\n a\n seg:y.c:*\n}\n")
        supp = load_suppressions(str(path))
        assert supp.entries[0].name == "a"


class TestJsonOutput:
    def test_dict_shape(self, one_report):
        d = report_to_dict(one_report)
        assert d["kind"] == "DeterminacyRace"
        assert len(d["segments"]) == 2
        assert d["conflict"]["bytes"] == 4
        assert d["allocation"]["size"] == 8
        assert d["allocation"]["site"] == "main.c:3"

    def test_json_roundtrip(self, one_report):
        doc = json.loads(reports_to_json([one_report]))
        assert doc["tool"] == "taskgrind"
        assert doc["error_count"] == 1
        labels = {s["label"] for s in doc["errors"][0]["segments"]}
        assert labels == {"main.c:8", "main.c:11"}

    def test_empty_reports(self):
        doc = json.loads(reports_to_json([]))
        assert doc["error_count"] == 0 and doc["errors"] == []
