"""End-to-end fuzz test: Taskgrind vs an independent happens-before oracle.

Random sibling task sets with random dependences and random accesses to a
shared arena are generated; the *oracle* computes the logically-conflicting
unordered pairs directly from the generated structure (networkx transitive
closure over the dependence DAG — an implementation completely independent
of the segment builder).  Taskgrind, run on the actual program through the
full stack (runtime → OMPT shim → client requests → segment graph →
Algorithm 1 → suppressions), must agree on racy-or-not, at every thread
count and seed.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.core.tool import TaskgrindOptions, TaskgrindTool
from repro.machine.machine import Machine
from repro.openmp.api import make_env

ARENA_SLOTS = 6          # distinct 8-byte shared slots tasks may touch
DEP_TOKENS = 3           # distinct dependence tokens


@dataclasses.dataclass(frozen=True)
class TaskSpec:
    """One generated task: dependences + accesses."""

    out_deps: Tuple[int, ...]          # dep token indices declared out
    in_deps: Tuple[int, ...]           # dep token indices declared in
    writes: Tuple[int, ...]            # arena slot indices written
    reads: Tuple[int, ...]             # arena slot indices read


def oracle_racy(specs: List[TaskSpec]) -> bool:
    """Ground truth, independent of repro.core: build the dependence DAG the
    OpenMP rules imply and look for an unordered conflicting pair."""
    g = nx.DiGraph()
    g.add_nodes_from(range(len(specs)))
    last_writers: Dict[int, List[int]] = {}
    readers_since: Dict[int, List[int]] = {}
    for i, spec in enumerate(specs):
        for tok in spec.in_deps:
            for w in last_writers.get(tok, ()):
                g.add_edge(w, i)
            readers_since.setdefault(tok, []).append(i)
        for tok in spec.out_deps:
            for w in last_writers.get(tok, ()):
                g.add_edge(w, i)
            for r in readers_since.get(tok, ()):
                g.add_edge(r, i)
            last_writers[tok] = [i]
            readers_since[tok] = []
    closure = nx.transitive_closure_dag(g)

    def ordered(a: int, b: int) -> bool:
        return closure.has_edge(a, b) or closure.has_edge(b, a)

    for i in range(len(specs)):
        for j in range(i + 1, len(specs)):
            if ordered(i, j):
                continue
            si, sj = specs[i], specs[j]
            if set(si.writes) & (set(sj.writes) | set(sj.reads)):
                return True
            if set(sj.writes) & set(si.reads):
                return True
    return False


def run_taskgrind(specs: List[TaskSpec], *, nthreads: int, seed: int) -> bool:
    machine = Machine(seed=seed)
    # the modeled multi-thread lock-up (a Table II artifact) is not under
    # test here; disable it so annotated+dependent programs run to the end
    tool = TaskgrindTool(TaskgrindOptions(model_multithread_lockup=False))
    machine.add_tool(tool)
    env = make_env(machine, nthreads=nthreads)
    env.rt.ompt.register(tool.make_ompt_shim())
    ctx = env.ctx

    def main() -> None:
        with ctx.function("main", line=1):
            arena = ctx.malloc(8 * ARENA_SLOTS, elem=8, name="arena")
            tokens = [ctx.malloc(8, name=f"tok{k}") for k in range(DEP_TOKENS)]

            def body() -> None:
                for idx, spec in enumerate(specs):
                    depend = {}
                    if spec.out_deps:
                        depend["out"] = [tokens[t] for t in spec.out_deps]
                    if spec.in_deps:
                        depend["in"] = [tokens[t] for t in spec.in_deps]

                    def task_body(tv, spec=spec):
                        for slot in spec.reads:
                            arena.read(slot)
                        for slot in spec.writes:
                            arena.write(slot)

                    ctx.line(10 + idx)
                    env.task(task_body, depend=depend or None,
                             name=f"fuzz{idx}", annotate_deferrable=True)
                env.taskwait()
            env.parallel_single(body)

    machine.run(main)
    return bool(tool.finalize())


task_spec = st.builds(
    TaskSpec,
    out_deps=st.frozensets(st.integers(0, DEP_TOKENS - 1),
                           max_size=2).map(tuple),
    in_deps=st.frozensets(st.integers(0, DEP_TOKENS - 1),
                          max_size=2).map(tuple),
    writes=st.frozensets(st.integers(0, ARENA_SLOTS - 1),
                         max_size=2).map(tuple),
    reads=st.frozensets(st.integers(0, ARENA_SLOTS - 1),
                        max_size=2).map(tuple),
)


class TestFuzzOracle:
    @given(st.lists(task_spec, min_size=2, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_verdict_matches_oracle_4threads(self, specs):
        specs = [dataclasses.replace(
            s, in_deps=tuple(t for t in s.in_deps if t not in s.out_deps))
            for s in specs]
        assert run_taskgrind(specs, nthreads=4, seed=1) == oracle_racy(specs)

    @given(st.lists(task_spec, min_size=2, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_verdict_matches_oracle_1thread(self, specs):
        """Single-thread: the annotation keeps the logical graph analyzed."""
        specs = [dataclasses.replace(
            s, in_deps=tuple(t for t in s.in_deps if t not in s.out_deps))
            for s in specs]
        assert run_taskgrind(specs, nthreads=1, seed=0) == oracle_racy(specs)

    @given(st.lists(task_spec, min_size=2, max_size=5),
           st.integers(0, 3))
    @settings(max_examples=30, deadline=None)
    def test_verdict_schedule_independent(self, specs, seed):
        """The segment analysis is logical: any seed, same verdict."""
        specs = [dataclasses.replace(
            s, in_deps=tuple(t for t in s.in_deps if t not in s.out_deps))
            for s in specs]
        expected = oracle_racy(specs)
        assert run_taskgrind(specs, nthreads=4, seed=seed) == expected
