"""Tests for the determinacy-race passes (Algorithm 1 + variants).

Includes property tests asserting the three implementations (naive, indexed,
parallel) produce identical candidate sets on random graphs.
"""

from hypothesis import given, settings, strategies as st

from repro.core.analysis import (find_races_indexed, find_races_naive, find_races_parallel)
from repro.core.segments import SegmentGraph


def make_graph(segments, edges, accesses):
    """segments: count; edges: (i,j) pairs; accesses: (seg, lo, hi, w)."""
    g = SegmentGraph()
    segs = [g.new_segment(thread_id=i % 4, task=None, kind="task")
            for i in range(segments)]
    for i, j in edges:
        g.add_edge(segs[i], segs[j])
    for idx, lo, hi, w in accesses:
        segs[idx].record(lo, hi - lo, w, None)
    return g, segs


def keys(cands):
    return sorted((c.key(), tuple(c.ranges.pairs())) for c in cands)


class TestAlgorithmOne:
    def test_write_write_conflict(self):
        g, segs = make_graph(2, [], [(0, 0, 8, True), (1, 4, 12, True)])
        cands = find_races_naive(g)
        assert len(cands) == 1
        assert cands[0].ranges.pairs() == [(4, 8)]

    def test_write_read_conflict(self):
        g, _ = make_graph(2, [], [(0, 0, 8, True), (1, 0, 8, False)])
        assert len(find_races_naive(g)) == 1

    def test_read_read_no_conflict(self):
        g, _ = make_graph(2, [], [(0, 0, 8, False), (1, 0, 8, False)])
        assert find_races_naive(g) == []

    def test_ordered_pair_not_reported(self):
        g, _ = make_graph(2, [(0, 1)], [(0, 0, 8, True), (1, 0, 8, True)])
        assert find_races_naive(g) == []

    def test_transitively_ordered_not_reported(self):
        g, _ = make_graph(3, [(0, 1), (1, 2)],
                          [(0, 0, 8, True), (2, 0, 8, True)])
        assert find_races_naive(g) == []

    def test_disjoint_ranges_not_reported(self):
        g, _ = make_graph(2, [], [(0, 0, 8, True), (1, 8, 16, True)])
        assert find_races_naive(g) == []

    def test_diamond_branches_conflict(self):
        g, _ = make_graph(4, [(0, 1), (0, 2), (1, 3), (2, 3)],
                          [(1, 0, 8, True), (2, 0, 8, True)])
        cands = find_races_naive(g)
        assert len(cands) == 1

    def test_multiple_conflicting_pairs(self):
        g, _ = make_graph(3, [], [(0, 0, 8, True), (1, 0, 8, True),
                                  (2, 0, 8, True)])
        assert len(find_races_naive(g)) == 3

    def test_symmetric_read_write(self):
        """s1 reads what s2 writes AND s2 reads what s1 writes."""
        g, _ = make_graph(2, [], [(0, 0, 8, True), (0, 16, 24, False),
                                  (1, 16, 24, True), (1, 0, 8, False)])
        cands = find_races_naive(g)
        assert len(cands) == 1
        assert cands[0].ranges.pairs() == [(0, 8), (16, 24)]


class TestIndexedEquivalence:
    def test_simple_case(self):
        g, _ = make_graph(3, [(0, 1)],
                          [(0, 0, 8, True), (1, 0, 8, True), (2, 4, 12, True)])
        assert keys(find_races_naive(g)) == keys(find_races_indexed(g))

    def test_parallel_matches(self):
        g, _ = make_graph(6, [(0, 1), (2, 3)],
                          [(i, (i % 3) * 8, (i % 3) * 8 + 12, i % 2 == 0)
                           for i in range(6)])
        assert keys(find_races_naive(g)) == keys(find_races_parallel(g))

    @given(
        st.integers(2, 10),
        st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=12),
        st.lists(st.tuples(st.integers(0, 9), st.integers(0, 96),
                           st.integers(1, 32), st.booleans()), max_size=24),
    )
    @settings(max_examples=120, deadline=None)
    def test_property_equivalence(self, n, raw_edges, raw_accs):
        edges = [(min(i, j), max(i, j)) for i, j in raw_edges
                 if i != j and i < n and j < n]
        accs = [(idx % n, lo, lo + sz, w) for idx, lo, sz, w in raw_accs]
        g, _ = make_graph(n, edges, accs)
        expected = keys(find_races_naive(g))
        assert keys(find_races_indexed(g)) == expected
        assert keys(find_races_parallel(g, workers=3)) == expected


class TestParallelWorkerClamp:
    """The pool is clamped to the chunk count and both figures are logged."""

    def _gauges(self):
        from repro.obs.metrics import get_registry
        reg = get_registry()
        return (reg.gauge("analysis.workers_requested").value,
                reg.gauge("analysis.workers_effective").value)

    def test_workers_beyond_chunks_are_clamped(self):
        # 3 conflicting pairs -> 1 chunk of pairs; 16 requested workers
        g, _ = make_graph(3, [], [(0, 0, 8, True), (1, 0, 8, True),
                                  (2, 0, 8, True)])
        cands = find_races_parallel(g, workers=16)
        assert len(cands) == 3
        requested, effective = self._gauges()
        assert requested == 16
        assert effective == 1

    def test_effective_zero_when_no_pairs(self):
        g, _ = make_graph(2, [], [(0, 0, 8, True), (1, 100, 108, True)])
        assert find_races_parallel(g, workers=8) == []
        requested, effective = self._gauges()
        assert requested == 8
        assert effective == 0

    def test_result_identical_across_worker_counts(self):
        g, _ = make_graph(5, [(0, 1)],
                          [(i, (i % 2) * 8, (i % 2) * 8 + 8, True)
                           for i in range(5)])
        expected = keys(find_races_parallel(g, workers=1))
        for w in (2, 3, 64):
            assert keys(find_races_parallel(g, workers=w)) == expected


class TestScaling:
    def test_indexed_skips_disjoint_segments(self):
        """Many segments with disjoint ranges produce no candidate pairs."""
        g = SegmentGraph()
        for i in range(200):
            s = g.new_segment(thread_id=0, task=None, kind="task")
            s.record(i * 100, 8, True, None)
        assert find_races_indexed(g) == []

    def test_indexed_finds_the_needle(self):
        g = SegmentGraph()
        for i in range(100):
            s = g.new_segment(thread_id=0, task=None, kind="task")
            s.record(i * 100, 8, True, None)
        needle = g.new_segment(thread_id=1, task=None, kind="task")
        needle.record(4200, 8, True, None)       # collides with segment 42
        cands = find_races_indexed(g)
        assert len(cands) == 1
        assert {cands[0].s1.id, cands[0].s2.id} == {42, needle.id}
