"""Crash-tolerant trace loading: salvage semantics + atomic save.

The load-bearing invariant throughout: a damaged trace may LOSE races but
must never INVENT one — every salvaged report key must also appear in the
fault-free analysis of the intact trace.
"""

import json
import os

import pytest

from repro.core.offline import main as offline_main
from repro.core.trace import (analyze_trace, analyze_trace_with_stats,
                              load_trace, load_trace_salvaged, save_trace)
from repro.errors import InjectedFault, TraceError
from repro.faults.inject import inject_plan
from repro.faults.plan import FaultPlan


def racy_listing(env):
    ctx = env.ctx
    x = ctx.malloc(8, line=3, name="x")

    def single_body():
        ctx.line(8)
        env.task(lambda tv: x.write(0, line=9), name="t8")
        ctx.line(11)
        env.task(lambda tv: x.write(0, line=12), name="t11")

    env.parallel_single(single_body)


@pytest.fixture
def traced(run_taskgrind, tmp_path):
    tool, machine = run_taskgrind(racy_listing)
    path = tmp_path / "run.trace.json"
    save_trace(tool, machine, str(path))
    return str(path), tool


def _keys(reports):
    return {r.key() for r in reports}


def _damaged(tmp_path, lines, name="damaged.json"):
    path = tmp_path / name
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return str(path)


class TestSalvage:
    def test_intact_trace_reads_complete(self, traced):
        path, _ = traced
        salvaged = load_trace_salvaged(path)
        cov = salvaged.coverage
        assert cov.complete
        assert cov.segments_recovered == cov.segments_total
        assert cov.edges_recovered == cov.edges_total
        assert cov.chunks_corrupt == 0

    def test_truncation_recovers_prefix(self, traced, tmp_path):
        path, tool = traced
        lines = open(path).read().splitlines()
        trunc = _damaged(tmp_path, lines[:2])      # header + segments
        salvaged = load_trace_salvaged(trunc)
        cov = salvaged.coverage
        assert not cov.complete
        assert cov.segments_recovered == len(tool.builder.graph.segments)
        assert not cov.environment_recovered
        assert cov.last_good_vtime > 0
        assert any("end marker" in e for e in cov.errors)

    def test_every_truncation_point_is_subset(self, traced, tmp_path):
        """Sweep every prefix length (incl. a torn half-line): salvage
        must degrade monotonically, never invent a report."""
        path, tool = traced
        full = _keys(tool.reports)
        data = open(path, "rb").read()
        for cut in range(0, len(data), max(1, len(data) // 40)):
            trunc = tmp_path / "cut.json"
            trunc.write_bytes(data[:cut])
            reports = analyze_trace(str(trunc))
            assert _keys(reports) <= full, f"invented a race at cut={cut}"

    def test_corrupt_middle_chunk_is_skipped(self, traced, tmp_path):
        path, tool = traced
        lines = open(path).read().splitlines()
        env_idx = next(i for i, line in enumerate(lines)
                       if json.loads(line)["kind"] == "environment")
        doc = json.loads(lines[env_idx])
        doc["payload"]["regions"] = "rotted"       # crc now wrong
        lines[env_idx] = json.dumps(doc)
        bad = _damaged(tmp_path, lines)
        salvaged = load_trace_salvaged(bad)
        cov = salvaged.coverage
        assert cov.chunks_corrupt == 1
        assert cov.first_bad_chunk == doc["seq"]
        assert cov.first_bad_byte is not None
        assert not cov.environment_recovered
        # the graph around the bad chunk survives untouched
        assert cov.segments_recovered == len(tool.builder.graph.segments)
        assert _keys(analyze_trace(bad)) <= _keys(tool.reports)

    def test_empty_file_salvages_to_nothing(self, tmp_path):
        empty = _damaged(tmp_path, [])
        salvaged = load_trace_salvaged(empty)
        assert salvaged.graph.segments == []
        assert not salvaged.coverage.complete
        assert salvaged.coverage.segments_total is None
        assert analyze_trace(empty) == []

    def test_lost_segment_chunk_drops_the_tail(self, traced, tmp_path):
        """A gap in the dense id space makes everything after it
        unrecoverable — the reader must not renumber across the hole."""
        path, _ = traced
        lines = open(path).read().splitlines()
        kept = [line for line in lines
                if json.loads(line)["kind"] != "segments"]
        salvaged = load_trace_salvaged(_damaged(tmp_path, kept))
        assert salvaged.coverage.segments_recovered == 0
        assert salvaged.coverage.edges_recovered == 0

    def test_strict_mode_raises(self, traced, tmp_path):
        path, _ = traced
        lines = open(path).read().splitlines()
        trunc = _damaged(tmp_path, lines[:2])
        with pytest.raises(TraceError):
            analyze_trace(trunc, strict=True)

    def test_coverage_block_in_stats(self, traced, tmp_path):
        path, _ = traced
        lines = open(path).read().splitlines()
        trunc = _damaged(tmp_path, lines[:2])
        _, stats = analyze_trace_with_stats(trunc)
        assert stats["coverage"]["complete"] is False
        assert stats["coverage"]["segments"]["recovered"] > 0


class TestOfflineCli:
    def test_damaged_trace_exits_cleanly(self, traced, tmp_path, capsys):
        path, _ = traced
        lines = open(path).read().splitlines()
        trunc = _damaged(tmp_path, lines[:2])
        rc = offline_main([trunc])
        out = capsys.readouterr().out
        assert rc in (0, 1)                  # 1 only when races survive
        assert "WARNING: trace damaged" in out

    def test_strict_flag_exits_nonzero(self, traced, tmp_path, capsys):
        path, _ = traced
        lines = open(path).read().splitlines()
        trunc = _damaged(tmp_path, lines[:2])
        assert offline_main([trunc, "--strict-trace"]) == 2
        assert capsys.readouterr().err       # actionable message on stderr

    def test_strict_flag_ok_on_intact_trace(self, traced, capsys):
        path, _ = traced
        assert offline_main([path, "--strict-trace"]) == 1   # races found
        assert "WARNING: trace damaged" not in capsys.readouterr().out


class TestAtomicSave:
    def test_mid_stream_crash_leaves_no_partial_file(self, run_taskgrind,
                                                     tmp_path):
        tool, machine = run_taskgrind(racy_listing)
        path = str(tmp_path / "crash.json")
        with inject_plan(FaultPlan.single("save-crash", 1)):
            with pytest.raises(InjectedFault):
                save_trace(tool, machine, path)
        assert not os.path.exists(path)
        assert not os.path.exists(path + ".tmp")

    def test_mid_stream_crash_preserves_previous_trace(self, run_taskgrind,
                                                       tmp_path):
        tool, machine = run_taskgrind(racy_listing)
        path = str(tmp_path / "run.json")
        save_trace(tool, machine, path)
        before = open(path, "rb").read()
        with inject_plan(FaultPlan.single("save-crash", 1)):
            with pytest.raises(InjectedFault):
                save_trace(tool, machine, path)
        assert open(path, "rb").read() == before
        graph, _, _ = load_trace(path)       # and it still loads strict
        assert graph.segments
