"""Schedule saves under armed fault plans: damage must always fail fast.

The schedule writer reuses the trace chunk writer, so trace-targeting
fault points (truncate / corrupt / save-crash) fire during
``save_schedule`` for free.  Unlike traces there is no salvage reader —
every fired fault must leave a file the strict loader refuses with the
schedule error taxonomy, never a half-schedule that silently replays a
different execution.
"""

import pytest

from repro.errors import (InjectedFault, ScheduleCorruptionError,
                          ScheduleError)
from repro.faults.inject import inject_plan
from repro.faults.plan import FaultPlan, builtin_plan
from repro.replay.schedule import ScheduleDoc, load_schedule, save_schedule


def make_doc() -> ScheduleDoc:
    return ScheduleDoc(
        program={"kind": "bench", "name": "heat", "nthreads": 2, "seed": 0},
        picks=[0, 1, 0, 1], segments=[[0, "serial", False, 0.0]],
        edges=[], allocs=[[1, 0, 32]], rng_draws={"omp.steal": 1},
        final_vclock=10.0)


class TestTruncation:
    def test_builtin_truncate_plan_fires_and_loader_refuses(self, tmp_path):
        path = str(tmp_path / "s.json")
        plan = builtin_plan("trace-truncate@2")
        with inject_plan(plan):
            save_schedule(make_doc(), path)
        assert plan.points[0].fired, "the fault point never triggered"
        with pytest.raises(ScheduleCorruptionError):
            load_schedule(path)

    def test_truncation_at_every_chunk_index(self, tmp_path):
        # chunk 0 tears the header line itself -> format/corruption error;
        # later chunks leave a valid prefix that must still be refused
        for at in range(6):
            path = str(tmp_path / f"s{at}.json")
            with inject_plan(FaultPlan.single("trace-truncate", at)):
                save_schedule(make_doc(), path)
            with pytest.raises(ScheduleError):
                load_schedule(path)


class TestCorruption:
    def test_corrupt_chunk_fails_the_checksum(self, tmp_path):
        path = str(tmp_path / "s.json")
        plan = FaultPlan.single("trace-corrupt", 2)
        with inject_plan(plan):
            save_schedule(make_doc(), path)
        assert plan.points[0].fired
        with pytest.raises(ScheduleCorruptionError, match="checksum"):
            load_schedule(path)

    def test_error_names_the_damaged_chunk(self, tmp_path):
        path = str(tmp_path / "s.json")
        with inject_plan(FaultPlan.single("trace-corrupt", 1)):
            save_schedule(make_doc(), path)
        with pytest.raises(ScheduleCorruptionError) as exc:
            load_schedule(path)
        assert exc.value.chunk_seq == 1
        assert exc.value.path == path


class TestSaveCrash:
    def test_writer_death_leaves_no_file(self, tmp_path):
        # save-crash raises mid-save; the atomic tmp+rename contract means
        # neither the final path nor the tmp file survives
        path = tmp_path / "s.json"
        with inject_plan(FaultPlan.single("save-crash", 1)):
            with pytest.raises(InjectedFault):
                save_schedule(make_doc(), str(path))
        assert not path.exists()
        assert not path.with_suffix(".json.tmp").exists()
