"""Fault-plan document parsing, validation and bookkeeping."""

import json

import pytest

from repro.faults.plan import (FAULT_KINDS, FAULT_PLAN_SCHEMA, FaultPlan,
                               FaultPoint, builtin_matrix, builtin_plan,
                               load_fault_plan)


class TestRoundTrip:
    def test_single_plan_roundtrips(self):
        plan = FaultPlan.single("trace-truncate", 2)
        again = FaultPlan.from_json(plan.to_json())
        assert again.name == plan.name == "trace-truncate@2"
        assert [p.to_dict() for p in again.points] \
            == [p.to_dict() for p in plan.points]

    def test_hang_seconds_survive(self):
        plan = FaultPlan.single("worker-hang", 0, seconds=0.25)
        again = FaultPlan.from_json(plan.to_json())
        assert again.points[0].seconds == 0.25

    def test_times_survives(self):
        plan = FaultPlan.single("worker-exc", 3, times=1)
        again = FaultPlan.from_json(plan.to_json())
        assert again.points[0].times == 1


class TestValidation:
    def test_unknown_kind_rejected(self):
        doc = {"schema": FAULT_PLAN_SCHEMA,
               "faults": [{"kind": "disk-full", "at": 0}]}
        with pytest.raises(ValueError, match="disk-full"):
            FaultPlan.from_dict(doc)

    def test_negative_trigger_rejected(self):
        doc = {"schema": FAULT_PLAN_SCHEMA,
               "faults": [{"kind": "alloc-oom", "at": -1}]}
        with pytest.raises(ValueError, match="non-negative"):
            FaultPlan.from_dict(doc)

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            FaultPlan.from_dict({"schema": "nope/1", "faults": []})

    def test_load_reports_path_on_bad_json(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="plan.json"):
            load_fault_plan(str(path))

    def test_load_valid_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(FaultPlan.single("alloc-oom", 1).to_json())
        plan = load_fault_plan(str(path))
        assert plan.points[0].kind == "alloc-oom"


class TestBuiltins:
    def test_matrices_cover_every_kind_once(self):
        from repro.faults.plan import serve_matrix
        plans = builtin_matrix() + serve_matrix()
        kinds = [p.points[0].kind for p in plans]
        assert sorted(kinds) == sorted(FAULT_KINDS)
        assert len({p.name for p in plans}) == len(plans)
        for plan in plans:
            assert plan.validate() == []

    def test_serve_matrix_is_wal_only(self):
        from repro.faults.plan import SERVE_WAL_KINDS, serve_matrix
        assert sorted(p.points[0].kind for p in serve_matrix()) \
            == sorted(SERVE_WAL_KINDS)

    def test_lookup_by_name(self):
        assert builtin_plan("alloc-oom@1").points[0].at == 1
        assert builtin_plan("kill-server@2").points[0].kind == "kill-server"

    def test_lookup_unknown_name(self):
        with pytest.raises(ValueError, match="unknown builtin"):
            builtin_plan("alloc-oom@999")


class TestFiredBookkeeping:
    def test_armed_until_times_exhausted(self):
        point = FaultPoint(kind="worker-exc", at=0, times=2)
        assert point.armed
        point.fired = 2
        assert not point.armed

    def test_unlimited_stays_armed(self):
        point = FaultPoint(kind="worker-exc", at=0)
        point.fired = 100
        assert point.armed

    def test_fired_summary_and_reset(self):
        plan = FaultPlan.single("trace-corrupt", 1)
        plan.points[0].fired = 3
        assert plan.fired_summary() == {"trace-corrupt@1": 3}
        plan.reset()
        assert plan.fired_summary() == {"trace-corrupt@1": 0}

    def test_plan_json_is_byte_stable(self):
        """CI checks plans into the workflow verbatim — serialization must
        be deterministic."""
        a = FaultPlan.single("save-crash", 1).to_json()
        b = FaultPlan.from_json(a).to_json()
        assert a == b
        assert json.loads(a)["schema"] == FAULT_PLAN_SCHEMA
