"""Injector hook semantics: firing indices, arming, cleanup."""

import json

import pytest

from repro.errors import InjectedFault, OutOfMemory
from repro.faults.inject import (_flip_payload, active_plan, get_injector,
                                 inject_plan)
from repro.faults.plan import FaultPlan


class TestLifecycle:
    def test_context_arms_and_disarms(self):
        plan = FaultPlan.single("alloc-oom", 0)
        assert active_plan() is None
        with inject_plan(plan):
            assert active_plan() is plan
        assert active_plan() is None

    def test_disarms_even_when_body_raises(self):
        plan = FaultPlan.single("alloc-oom", 0)
        with pytest.raises(RuntimeError):
            with inject_plan(plan):
                raise RuntimeError("boom")
        assert active_plan() is None

    def test_none_plan_is_a_noop(self):
        with inject_plan(None):
            assert active_plan() is None

    def test_activation_resets_fired_counters(self):
        plan = FaultPlan.single("alloc-oom", 0)
        plan.points[0].fired = 7
        with inject_plan(plan):
            assert plan.points[0].fired == 0


class TestAllocHook:
    def test_fires_at_exact_op_index(self):
        with inject_plan(FaultPlan.single("alloc-oom", 2)) as inj:
            inj.on_alloc()                 # op 0
            inj.on_alloc()                 # op 1
            with pytest.raises(OutOfMemory, match="op 2"):
                inj.on_alloc()             # op 2

    def test_inert_without_plan(self):
        inj = get_injector()
        for _ in range(10):
            inj.on_alloc()                 # must never raise


class TestAnalysisHook:
    def test_worker_exc_raises_on_its_chunk_only(self):
        with inject_plan(FaultPlan.single("worker-exc", 1)) as inj:
            inj.on_analysis_chunk(0)
            with pytest.raises(InjectedFault):
                inj.on_analysis_chunk(1)

    def test_times_bounds_firing(self):
        plan = FaultPlan.single("worker-exc", 0, times=1)
        with inject_plan(plan) as inj:
            with pytest.raises(InjectedFault):
                inj.on_analysis_chunk(0)
            inj.on_analysis_chunk(0)       # disarmed: retry succeeds
        assert plan.points[0].fired == 1

    def test_hang_sleeps_instead_of_raising(self):
        plan = FaultPlan.single("worker-hang", 0, seconds=0.0)
        with inject_plan(plan) as inj:
            inj.on_analysis_chunk(0)       # no exception
        assert plan.points[0].fired == 1


class TestTraceHook:
    LINE = b'{"seq": 3, "kind": "segments", "crc": 1, "payload": {"a": 1}}'

    def test_truncate_stops_the_stream(self):
        with inject_plan(FaultPlan.single("trace-truncate", 3)) as inj:
            assert inj.on_trace_chunk(2, self.LINE) == self.LINE
            assert inj.on_trace_chunk(3, self.LINE) is None

    def test_save_crash_fires_after_its_chunk(self):
        with inject_plan(FaultPlan.single("save-crash", 3)) as inj:
            assert inj.on_trace_chunk(3, self.LINE) == self.LINE
            with pytest.raises(InjectedFault):
                inj.on_trace_chunk(4, self.LINE)

    def test_corrupt_keeps_line_parseable(self):
        """Bit-rot model: the reader must need the checksum, not a JSON
        decode error, to notice."""
        with inject_plan(FaultPlan.single("trace-corrupt", 3)) as inj:
            out = inj.on_trace_chunk(3, self.LINE)
        assert out != self.LINE
        json.loads(out)                    # still framed JSON

    def test_flip_payload_changes_payload_bytes_only(self):
        out = _flip_payload(self.LINE)
        marker = out.find(b'"payload"')
        assert out[:marker] == self.LINE[:marker]
        assert out != self.LINE
