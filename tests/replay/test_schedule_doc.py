"""The ``taskgrind-schedule/1`` document: round trips and strict loading.

A schedule pins an interleaving; unlike traces there is no salvage path,
so every form of damage must fail fast with the schedule error taxonomy.
"""

import json

import pytest

from repro.core.trace import _ChunkWriter
from repro.errors import (ScheduleCorruptionError, ScheduleError,
                          ScheduleFormatError, ScheduleVersionError)
from repro.replay.schedule import (CHUNK_PICKS, SCHEDULE_SCHEMA,
                                   SCHEDULE_VERSION, ScheduleDoc,
                                   load_schedule, save_schedule)


def make_doc(npicks: int = 7) -> ScheduleDoc:
    return ScheduleDoc(
        program={"kind": "bench", "name": "heat", "nthreads": 2, "seed": 0,
                 "record_mode": "sync", "options": {}},
        picks=[k % 2 for k in range(npicks)],
        segments=[[0, "serial", False, 0.0], [1, "task", True, 12.5],
                  [0, "task", False, 40.0]],
        edges=[[0, 1], [1, 2]],
        allocs=[[1, 0, 64], [2, 1, 128]],
        rng_draws={"omp.steal": 3, "sched.tiebreak": 9},
        final_vclock=99.25)


class TestRoundTrip:
    def test_save_load_preserves_every_field(self, tmp_path):
        doc = make_doc()
        path = str(tmp_path / "s.json")
        save_schedule(doc, path)
        again = load_schedule(path)
        assert again.program == doc.program
        assert again.picks == doc.picks
        assert again.segments == doc.segments
        assert again.edges == doc.edges
        assert again.allocs == doc.allocs
        assert again.rng_draws == doc.rng_draws
        assert again.final_vclock == doc.final_vclock

    def test_chunked_round_trip(self, tmp_path):
        # more picks than one chunk holds: the dovetail check must pass
        doc = make_doc(npicks=2 * CHUNK_PICKS + 17)
        path = str(tmp_path / "big.json")
        save_schedule(doc, path)
        assert load_schedule(path).picks == doc.picks

    def test_dict_round_trip(self):
        doc = make_doc()
        again = ScheduleDoc.from_dict(doc.to_dict())
        assert again.to_dict() == doc.to_dict()

    def test_from_dict_rejects_wrong_schema(self):
        with pytest.raises(ScheduleFormatError, match="schema"):
            ScheduleDoc.from_dict({"schema": "taskgrind-trace/2"})

    def test_format_error_is_a_value_error(self):
        # callers that catch ValueError on document parsing keep working
        with pytest.raises(ValueError):
            ScheduleDoc.from_dict({"schema": "nope"})

    def test_summary_names_the_program(self):
        assert "heat" in make_doc().summary()


class TestStrictLoading:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ScheduleFormatError):
            load_schedule(str(tmp_path / "absent.json"))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("")
        with pytest.raises(ScheduleFormatError, match="empty"):
            load_schedule(str(path))

    def test_non_json_file(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("definitely not a schedule\n")
        with pytest.raises(ScheduleFormatError, match="junk.json"):
            load_schedule(str(path))

    def test_json_without_chunk_envelope(self, tmp_path):
        path = tmp_path / "plain.json"
        path.write_text(json.dumps({"schema": SCHEDULE_SCHEMA}) + "\n")
        with pytest.raises(ScheduleFormatError, match="envelope"):
            load_schedule(str(path))

    def test_wrong_version(self, tmp_path):
        path = str(tmp_path / "future.json")
        with open(path, "wb") as fh:
            w = _ChunkWriter(fh)
            w.emit("header", {"schema": SCHEDULE_SCHEMA,
                              "version": SCHEDULE_VERSION + 1,
                              "counts": {}, "final_vclock": 0.0})
        with pytest.raises(ScheduleVersionError) as exc:
            load_schedule(path)
        assert exc.value.found == SCHEDULE_VERSION + 1
        assert "re-record" in str(exc.value)

    def test_truncation_at_every_line_fails_fast(self, tmp_path):
        doc = make_doc()
        path = tmp_path / "full.json"
        save_schedule(doc, str(path))
        lines = path.read_bytes().splitlines(keepends=True)
        assert len(lines) >= 5
        for keep in range(1, len(lines)):
            cut = tmp_path / f"cut{keep}.json"
            cut.write_bytes(b"".join(lines[:keep]))
            with pytest.raises(ScheduleCorruptionError, match="no end chunk"):
                load_schedule(str(cut))

    def test_torn_final_line(self, tmp_path):
        doc = make_doc()
        path = tmp_path / "full.json"
        save_schedule(doc, str(path))
        data = path.read_bytes()
        torn = tmp_path / "torn.json"
        torn.write_bytes(data[:len(data) // 2])
        with pytest.raises(ScheduleError):
            load_schedule(str(torn))

    def test_flipped_byte_breaks_the_checksum(self, tmp_path):
        doc = make_doc()
        path = tmp_path / "full.json"
        save_schedule(doc, str(path))
        lines = path.read_bytes().splitlines(keepends=True)
        # flip one alphabetic byte inside the picks payload
        target = next(i for i, ln in enumerate(lines) if b'"picks"' in ln)
        line = lines[target]
        at = line.find(b'"payload"') + len(b'"payload"')
        while not line[at:at + 1].isalpha():
            at += 1
        lines[target] = line[:at] + line[at:at + 1].swapcase() + line[at + 1:]
        bad = tmp_path / "bad.json"
        bad.write_bytes(b"".join(lines))
        with pytest.raises(ScheduleCorruptionError) as exc:
            load_schedule(str(bad))
        assert exc.value.chunk_seq == target
        assert "never attempted" in str(exc.value)

    def test_reordered_chunks(self, tmp_path):
        doc = make_doc()
        path = tmp_path / "full.json"
        save_schedule(doc, str(path))
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1], lines[2] = lines[2], lines[1]
        bad = tmp_path / "swapped.json"
        bad.write_bytes(b"".join(lines))
        with pytest.raises(ScheduleCorruptionError, match="sequence"):
            load_schedule(str(bad))

    def test_data_after_end_chunk(self, tmp_path):
        doc = make_doc()
        path = tmp_path / "full.json"
        save_schedule(doc, str(path))
        with open(path, "ab") as fh:
            fh.write(b'{"seq": 99, "kind": "picks"}\n')
        with pytest.raises(ScheduleCorruptionError, match="after the end"):
            load_schedule(str(path))

    def test_header_count_mismatch(self, tmp_path):
        # a well-formed stream whose header over-claims: the final count
        # check must refuse, even though every chunk passed its checksum
        path = str(tmp_path / "short.json")
        with open(path, "wb") as fh:
            w = _ChunkWriter(fh)
            w.emit("header", {"schema": SCHEDULE_SCHEMA,
                              "version": SCHEDULE_VERSION,
                              "counts": {"picks": 2, "segments": 0,
                                         "edges": 0, "allocs": 0,
                                         "rng_streams": 0},
                              "final_vclock": 0.0})
            w.emit("program", {"kind": "bench", "name": "x"})
            w.emit("rng", {"draws": {}})
            w.emit("end", {"chunks": 4})
        with pytest.raises(ScheduleCorruptionError, match="counts"):
            load_schedule(path)

    def test_gap_in_element_stream(self, tmp_path):
        # picks chunk starting past the elements seen so far = a missing
        # chunk that somehow kept valid seq numbers — still refused
        path = str(tmp_path / "gap.json")
        with open(path, "wb") as fh:
            w = _ChunkWriter(fh)
            w.emit("header", {"schema": SCHEDULE_SCHEMA,
                              "version": SCHEDULE_VERSION,
                              "counts": {"picks": 4, "segments": 0,
                                         "edges": 0, "allocs": 0,
                                         "rng_streams": 0},
                              "final_vclock": 0.0})
            w.emit("picks", {"start": 2, "picks": [0, 1]})
        with pytest.raises(ScheduleCorruptionError, match="element"):
            load_schedule(path)
