"""Two-phase record/replay: determinism proof, parity, tamper detection."""

import copy

import pytest

from repro.bench.runner import _find_program, run_benchmark
from repro.core.tool import TaskgrindOptions
from repro.errors import ReplayDivergenceError
from repro.replay import (ReplayFilter, ScheduleDoc, record_bench,
                          replay_bench)
from repro.replay.cli import _canon_reports


@pytest.fixture(scope="module")
def fib_recording():
    return record_bench(_find_program("fib"))


@pytest.fixture(scope="module")
def racy_recording():
    return record_bench(_find_program("heat-racy"))


@pytest.fixture(scope="module")
def racy_single_pass():
    """The classic one-pass full-instrumentation run, same seed/threads."""
    return run_benchmark(_find_program("heat-racy"), "taskgrind",
                         nthreads=4, seed=0,
                         taskgrind_options=TaskgrindOptions())


class TestSyncRecording:
    def test_sync_pass_keeps_no_evidence_and_reports_nothing(
            self, racy_recording):
        result, doc = racy_recording
        assert result.report_count == 0
        assert result.stats["record"]["mode"] == "sync"
        assert result.stats["record"]["recorded_accesses"] == 0
        assert result.stats["record"]["sync_skipped_accesses"] > 0

    def test_schedule_captures_the_interleaving(self, racy_recording):
        _, doc = racy_recording
        assert doc.picks and doc.segments and doc.edges
        assert doc.final_vclock > 0
        # the recorder sees the seeded scheduler's own draws too —
        # the replayer excludes sched.* when cross-checking rng patterns
        assert any(k.startswith("sched.") for k in doc.rng_draws)

    def test_program_ref_names_the_bench(self, racy_recording):
        _, doc = racy_recording
        assert doc.program["kind"] == "bench"
        assert doc.program["name"] == "heat-racy"


class TestReplayParity:
    def test_replay_holds_and_consumes_the_whole_recording(
            self, racy_recording):
        _, doc = racy_recording
        result, session = replay_bench(doc)
        assert session.picks_used == len(doc.picks)
        assert session.segments_checked == len(doc.segments)
        assert session.edges_checked == len(doc.edges)
        assert result.stats["record"]["mode"] == "full"

    def test_replayed_verdict_equals_single_pass(self, racy_recording,
                                                 racy_single_pass):
        _, doc = racy_recording
        result, _ = replay_bench(doc)
        assert result.report_count == racy_single_pass.report_count > 0
        assert _canon_reports(result.reports, None) \
            == _canon_reports(racy_single_pass.reports, None)

    def test_clean_program_replays_clean(self, fib_recording):
        _, doc = fib_recording
        result, _ = replay_bench(doc)
        assert result.report_count == 0


class TestPartialReplay:
    def test_addr_filter_parity_with_clipped_full_run(self, racy_recording,
                                                      racy_single_pass):
        _, doc = racy_recording
        flt = ReplayFilter.parse(["0x10000078:0x10000090"], [])
        result, _ = replay_bench(doc, replay_filter=flt)
        want = _canon_reports(racy_single_pass.reports, flt)
        assert want, "filter range must cover some of the planted race"
        assert _canon_reports(result.reports, flt) == want
        replay_stats = result.stats["replay"]
        assert replay_stats["dropped_accesses"] > 0
        assert replay_stats["filter"]["addr_ranges"]

    def test_pair_filter_restricts_candidates(self, racy_recording,
                                              racy_single_pass):
        _, doc = racy_recording
        full_pairs = {(r.s1.id, r.s2.id) for r in racy_single_pass.reports}
        keep = next(iter(full_pairs))
        flt = ReplayFilter.parse([], [f"{keep[0]}:{keep[1]}"])
        result, _ = replay_bench(doc, replay_filter=flt)
        assert {(r.s1.id, r.s2.id) for r in result.reports} <= {keep}
        assert _canon_reports(result.reports, flt) \
            == _canon_reports(racy_single_pass.reports, flt)


class TestTamperDetection:
    def test_impossible_pick_diverges_immediately(self, fib_recording):
        _, doc = fib_recording
        bad = ScheduleDoc.from_dict(copy.deepcopy(doc.to_dict()))
        bad.picks[0] = 999
        with pytest.raises(ReplayDivergenceError) as exc:
            replay_bench(bad)
        assert exc.value.what == "pick"
        assert exc.value.index == 0
        assert exc.value.expected == 999
        assert exc.value.to_dict()["what"] == "pick"

    def test_tampered_vclock_checkpoint_diverges(self, fib_recording):
        _, doc = fib_recording
        bad = ScheduleDoc.from_dict(copy.deepcopy(doc.to_dict()))
        bad.segments[1][3] += 1.0
        with pytest.raises(ReplayDivergenceError) as exc:
            replay_bench(bad)
        assert exc.value.what == "vclock"

    def test_vclock_check_can_be_waived(self, fib_recording):
        _, doc = fib_recording
        bad = ScheduleDoc.from_dict(copy.deepcopy(doc.to_dict()))
        for seg in bad.segments:
            seg[3] += 1.0
        bad.final_vclock += 1.0
        result, _ = replay_bench(bad, check_vclock=False)
        assert result.report_count == 0

    def test_tampered_edge_diverges(self, fib_recording):
        _, doc = fib_recording
        bad = ScheduleDoc.from_dict(copy.deepcopy(doc.to_dict()))
        bad.edges[0] = [bad.edges[0][1], bad.edges[0][0]]
        with pytest.raises(ReplayDivergenceError) as exc:
            replay_bench(bad)
        assert exc.value.what == "edge"

    def test_extra_recorded_pick_fails_the_count_proof(self, fib_recording):
        _, doc = fib_recording
        bad = ScheduleDoc.from_dict(copy.deepcopy(doc.to_dict()))
        bad.picks.append(bad.picks[-1])
        with pytest.raises(ReplayDivergenceError) as exc:
            replay_bench(bad)
        assert exc.value.what == "count"


class TestReplayFilter:
    def test_parse_and_clip(self):
        flt = ReplayFilter.parse(["0x100:0x200", "0x280:0x300"], [])
        assert flt.filters_addresses
        assert flt.clip(0x80, 0x110) == [(0x100, 0x110)]
        assert flt.clip(0x250, 0x260) == []
        assert flt.clip(0x1f0, 0x310) == [(0x1f0, 0x200), (0x280, 0x300)]

    def test_parse_rejects_inverted_or_empty_range(self):
        with pytest.raises(ValueError, match="empty"):
            ReplayFilter.parse(["0x300:0x280"], [])

    def test_empty_filter_admits_everything(self):
        flt = ReplayFilter()
        assert not flt.filters_addresses
        assert flt.admits_pair(3, 7)

    def test_pair_filter_is_unordered(self):
        flt = ReplayFilter.parse([], ["4:9"])
        assert flt.admits_pair(4, 9) and flt.admits_pair(9, 4)
        assert not flt.admits_pair(4, 5)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            ReplayFilter.parse(["not-a-range"], [])
        with pytest.raises(ValueError):
            ReplayFilter.parse([], ["1:2:3"])

    def test_describe_is_json_friendly(self):
        flt = ReplayFilter.parse(["0:16"], ["1:2"])
        doc = flt.describe()
        assert doc["addr_ranges"] == [[0, 16]]
        assert doc["pairs"] == [[1, 2]]
