"""Overload behavior: admission control, circuit breaker, client backoff.

Overload must turn into *typed* 429s with ``Retry-After`` — never into
unbounded queues, silent drops or untyped 500s — and the client must
honor the hint with decorrelated-jitter backoff (satellite: typed
``{"error": {...}}`` bodies re-raise as the matching
:mod:`repro.errors` classes on the client side).
"""

import time

import pytest

from repro.errors import (JobStateError, ResourceNotFound,
                          ServeOverloadError, UploadSequenceError)
from repro.faults.inject import inject_plan
from repro.faults.plan import FaultPlan
from repro.serve import ServeClient, ServeConfig, ServerThread
from repro.serve.client import error_from_body
from repro.serve.overload import (AdmissionControl, CircuitBreaker,
                                  backoff_delays)


class TestAdmissionUnit:
    def test_job_queue_limit(self):
        adm = AdmissionControl(max_queue_depth=4, retry_after_s=0.5)
        adm.admit_job(3)
        with pytest.raises(ServeOverloadError) as exc:
            adm.admit_job(4)
        fields = exc.value.fields()
        assert fields["resource"] == "job-queue"
        assert fields["limit"] == 4 and fields["current"] == 4
        assert fields["retry_after_s"] == 0.5

    def test_upload_bytes_limit(self):
        adm = AdmissionControl(max_upload_bytes=100)
        adm.admit_upload(40, 60)
        with pytest.raises(ServeOverloadError) as exc:
            adm.admit_upload(41, 60)
        assert exc.value.fields()["resource"] == "upload-bytes"


class TestBreakerUnit:
    def _clock(self):
        self.now += 0.0
        return self.now

    def test_opens_after_threshold_and_half_opens(self):
        self.now = 0.0
        br = CircuitBreaker(threshold=3, cooldown_s=1.0,
                            clock=lambda: self.now)
        for _ in range(2):
            br.record("upload_chunk", 503)
        br.check("upload_chunk")            # still closed at 2 failures
        br.record("upload_chunk", 503)      # 3rd: opens
        assert br.state_of("upload_chunk") == "open"
        with pytest.raises(ServeOverloadError) as exc:
            br.check("upload_chunk")
        assert 0 < exc.value.retry_after_s <= 1.0
        self.now = 1.5
        assert br.state_of("upload_chunk") == "half-open"
        br.check("upload_chunk")            # the single probe is admitted
        with pytest.raises(ServeOverloadError):
            br.check("upload_chunk")        # concurrent probe refused
        br.record("upload_chunk", 200)      # probe succeeded: closed
        assert br.state_of("upload_chunk") == "closed"
        br.check("upload_chunk")

    def test_failed_probe_reopens(self):
        self.now = 0.0
        br = CircuitBreaker(threshold=2, cooldown_s=1.0,
                            clock=lambda: self.now)
        br.record("analyze", 500)
        br.record("analyze", 500)
        self.now = 1.1
        br.check("analyze")                 # probe
        br.record("analyze", 500)           # probe failed: fresh cooldown
        assert br.state_of("analyze") == "open"
        with pytest.raises(ServeOverloadError):
            br.check("analyze")

    def test_429_is_not_an_endpoint_failure(self):
        br = CircuitBreaker(threshold=1)
        br.record("analyze", 429)
        assert br.state_of("analyze") == "closed"

    def test_endpoints_are_independent(self):
        br = CircuitBreaker(threshold=1, cooldown_s=60.0)
        br.record("upload_chunk", 500)
        with pytest.raises(ServeOverloadError):
            br.check("upload_chunk")
        br.check("create_trace")            # other circuits unaffected


class TestBackoffDelays:
    def test_bounds_and_growth(self):
        # deterministic "uniform": always the max of the range
        delays = list(backoff_delays(base_s=0.1, cap_s=2.0, attempts=6,
                                     rand=lambda lo, hi: hi))
        assert len(delays) == 6
        assert delays[0] == pytest.approx(0.3)
        assert all(d <= 2.0 for d in delays)
        assert delays[-1] == 2.0            # growth saturates at the cap

    def test_jitter_stays_above_base(self):
        delays = list(backoff_delays(base_s=0.05, cap_s=1.0, attempts=8,
                                     rand=lambda lo, hi: lo))
        assert all(d >= 0.05 for d in delays)


class TestServerSheds:
    def test_queue_depth_429_with_retry_after(self, trace_lines):
        cfg = ServeConfig(shards=1, max_queue_depth=1, retry_after_s=0.05)
        with ServerThread(cfg) as srv, \
                ServeClient(srv.base_url, retries=0) as client:
            trace_id, _ = client.upload_trace(trace_lines)
            with inject_plan(FaultPlan.single("worker-hang", 0,
                                              seconds=0.4, times=1)):
                j1 = client.analyze(trace_id)
                status, doc = client.request(
                    "POST", f"/v1/traces/{trace_id}/analyze", retry=False)
                assert status == 429
                err = doc["error"]
                assert err["type"] == "ServeOverloadError"
                assert err["resource"] == "job-queue"
                assert "retry-after" in client.last_headers
                assert float(client.last_headers["retry-after"]) > 0
                client.wait(j1, timeout=30.0)

    def test_upload_bytes_429(self, trace_lines):
        cfg = ServeConfig(max_upload_bytes=1)
        with ServerThread(cfg) as srv, \
                ServeClient(srv.base_url, retries=0) as client:
            trace_id = client.create_trace()
            status, doc = client.upload_chunk(trace_id, 0, trace_lines[0],
                                              retry=False)
            assert status == 429
            assert doc["error"]["resource"] == "upload-bytes"

    def test_draining_is_typed_503(self, trace_lines):
        with ServerThread(ServeConfig()) as srv, \
                ServeClient(srv.base_url, retries=0) as client:
            trace_id, _ = client.upload_trace(trace_lines)
            srv.service.draining = True
            status, doc = client.request("POST", "/v1/traces", retry=False)
            assert status == 503
            assert doc["error"]["type"] == "ServeOverloadError"
            assert doc["error"]["draining"] is True
            assert "retry-after" in client.last_headers
            # reads still work during a drain: clients collect results
            assert client.trace_status(trace_id)["state"] == "complete"

    def test_breaker_opens_on_consecutive_5xx(self, trace_lines):
        cfg = ServeConfig(breaker_threshold=3, breaker_cooldown_s=0.15)
        with ServerThread(cfg) as srv, \
                ServeClient(srv.base_url, retries=0) as client:
            trace_id = client.create_trace()
            # unlimited injected stream deaths: every PUT is a 503
            with inject_plan(FaultPlan.single("trace-truncate", 0)):
                for _ in range(3):
                    status, _doc = client.upload_chunk(
                        trace_id, 0, trace_lines[0], retry=False)
                    assert status == 503
                status, doc = client.upload_chunk(
                    trace_id, 0, trace_lines[0], retry=False)
                assert status == 429        # breaker open: shed instantly
                assert doc["error"]["resource"] == "breaker:upload_chunk"
            time.sleep(0.2)                 # cooldown elapses; fault gone
            status, _doc = client.upload_chunk(trace_id, 0, trace_lines[0],
                                               retry=False)
            assert status == 200            # the probe closes the circuit
            status, _doc = client.upload_chunk(trace_id, 1, trace_lines[1],
                                               retry=False)
            assert status == 200


class TestClientBackoff:
    def test_retries_until_queue_frees(self, trace_lines):
        cfg = ServeConfig(shards=1, max_queue_depth=1, retry_after_s=0.02)
        with ServerThread(cfg) as srv, \
                ServeClient(srv.base_url, retries=8,
                            backoff_base_s=0.02,
                            backoff_cap_s=0.1) as client:
            trace_id, _ = client.upload_trace(trace_lines)
            with inject_plan(FaultPlan.single("worker-hang", 0,
                                              seconds=0.2, times=1)):
                j1 = client.analyze(trace_id)
                # the retrying client rides out the full queue
                j2 = client.analyze(trace_id)
            assert client.retry_sleeps > 0
            client.wait(j1, timeout=30.0)
            client.wait(j2, timeout=30.0)


class TestTypedClientErrors:
    def test_unknown_trace_raises_resource_not_found(self, server):
        with ServeClient(server.base_url) as client:
            with pytest.raises(ResourceNotFound) as exc:
                client.analyze("t404")
            assert exc.value.resource_id == "t404"

    def test_early_report_raises_job_state_error(self, server, trace_lines):
        with ServeClient(server.base_url) as client:
            trace_id, _ = client.upload_trace(trace_lines)
            with inject_plan(FaultPlan.single("worker-hang", 0,
                                              seconds=0.3, times=1)):
                job_id = client.analyze(trace_id)
                status, doc = client.report(job_id)
            assert status == 409
            exc = error_from_body(status, doc)
            assert isinstance(exc, JobStateError)
            assert exc.job_id == job_id
            client.wait(job_id, timeout=30.0)

    def test_sequence_error_round_trips_fields(self, server, trace_lines):
        with ServeClient(server.base_url) as client:
            trace_id = client.create_trace()
            status, doc = client.upload_chunk(trace_id, 3, trace_lines[3],
                                              retry=False)
            assert status == 409
            exc = error_from_body(status, doc)
            assert isinstance(exc, UploadSequenceError)
            assert exc.expected_seq == 0 and exc.got_seq == 3

    def test_overload_round_trips_retry_after(self):
        body = {"error": {"type": "ServeOverloadError",
                          "resource": "job-queue", "retry_after_s": 0.75,
                          "limit": 8, "current": 8, "draining": False}}
        exc = error_from_body(429, body)
        assert isinstance(exc, ServeOverloadError)
        assert exc.retry_after_s == 0.75 and exc.limit == 8

    def test_unstructured_body_degrades_gracefully(self):
        exc = error_from_body(500, {"raw": "<html>nope</html>"})
        assert "500" in str(exc)
