"""End-to-end tests over real HTTP: an in-process server on a loopback
socket, the stdlib client, and a recorded racy trace.

The load-bearing assertion is byte parity: the report the server
produces for an uploaded trace must serialize identically to what
``repro.core.offline`` computes from the same file.
"""

import json

from repro.core.reports import report_to_dict
from repro.core.trace import TRACE_VERSION, analyze_trace
from repro.obs.tracecheck import validate_events
from repro.serve import ServeClient
from repro.serve.client import read_trace_lines

from tests.serve.conftest import chunk_line, header_line


class TestLifecycle:
    def test_report_byte_parity_with_offline(self, client, trace_file,
                                             trace_lines):
        offline = json.dumps(
            [report_to_dict(r) for r in analyze_trace(trace_file)],
            sort_keys=True)
        trace_id, ack = client.upload_trace(trace_lines)
        assert ack["state"] == "complete"
        job_id = client.analyze(trace_id)
        doc = client.wait(job_id, timeout=60.0)
        assert doc["state"] == "done"
        status, report = client.report(job_id)
        assert status == 200
        assert report["schema"] == "taskgrind-serve-report/1"
        assert report["error_count"] >= 1
        assert json.dumps(report["errors"], sort_keys=True) == offline
        assert report["coverage"]["complete"] is True
        assert report["job_id"] == job_id
        assert report["trace_id"] == trace_id

    def test_timeline_is_valid_chrome_trace(self, client, trace_lines):
        trace_id, _ = client.upload_trace(trace_lines)
        job_id = client.analyze(trace_id)
        client.wait(job_id, timeout=60.0)
        doc = client.timeline(job_id)
        events = doc["traceEvents"]
        validate_events(events)
        spans = {e["name"] for e in events if e["ph"] == "X"}
        assert {"queue-wait", "build", "analyze", "report"} <= spans

    def test_healthz_and_metrics(self, client, server):
        status, doc = client.request("GET", "/healthz")
        assert status == 200 and doc["ok"] is True
        status, doc = client.request("GET", "/metrics")
        assert status == 200
        assert "serve" in doc.get("raw", "")


class TestStructuredErrors:
    def test_identical_reput_is_idempotent_200(self, client, trace_lines):
        # a resuming client may resend a chunk whose ack it never saw;
        # the identical body must ack as a no-op, not 409
        trace_id = client.create_trace()
        assert client.upload_chunk(trace_id, 0, trace_lines[0])[0] == 200
        status, doc = client.upload_chunk(trace_id, 0, trace_lines[0])
        assert status == 200
        assert doc["duplicate"] is True
        assert doc["next_seq"] == 1

    def test_conflicting_reput_is_409(self, client, trace_lines):
        trace_id = client.create_trace()
        assert client.upload_chunk(trace_id, 0, trace_lines[0])[0] == 200
        assert client.upload_chunk(trace_id, 1, trace_lines[1])[0] == 200
        # seq 1 again but with different (valid-envelope) content
        other = json.loads(trace_lines[2])
        other["seq"] = 1
        status, doc = client.upload_chunk(trace_id, 1,
                                          json.dumps(other).encode(),
                                          retry=False)
        assert status == 409
        err = doc["error"]
        assert err["type"] == "UploadSequenceError"
        assert "different content" in err["reason"]

    def test_out_of_order_chunk_is_409(self, client, trace_lines):
        trace_id = client.create_trace()
        assert client.upload_chunk(trace_id, 0, trace_lines[0])[0] == 200
        status, doc = client.upload_chunk(trace_id, 5, trace_lines[5])
        assert status == 409
        assert "out-of-order" in doc["error"]["reason"]

    def test_crc_mismatch_is_422_with_location(self, client, trace_lines):
        trace_id = client.create_trace()
        assert client.upload_chunk(trace_id, 0, trace_lines[0])[0] == 200
        doc = json.loads(trace_lines[1])
        doc["crc"] = (doc["crc"] + 1) & 0xFFFFFFFF
        status, body = client.upload_chunk(trace_id, 1,
                                           json.dumps(doc).encode())
        assert status == 422
        err = body["error"]
        assert err["type"] == "TraceCorruptionError"
        assert err["chunk_seq"] == 1
        assert "byte_offset" in err

    def test_undecodable_chunk_is_400(self, client):
        trace_id = client.create_trace()
        status, doc = client.upload_chunk(trace_id, 0, b"}{")
        assert status == 400
        assert doc["error"]["type"] == "TraceFormatError"

    def test_wrong_version_is_400(self, client):
        trace_id = client.create_trace()
        status, doc = client.upload_chunk(
            trace_id, 0, header_line(version=TRACE_VERSION + 1))
        assert status == 400
        assert doc["error"]["type"] == "TraceVersionError"

    def test_unknown_trace_is_404(self, client):
        status, doc = client.request("GET", "/v1/traces/t404")
        assert status == 404
        assert doc["error"]["type"] == "ResourceNotFound"

    def test_unknown_job_is_404(self, client):
        status, doc = client.request("GET", "/v1/jobs/j404")
        assert status == 404

    def test_unmatched_route_is_404(self, client):
        status, doc = client.request("POST", "/v1/nonsense")
        assert status == 404

    def test_non_integer_seq_is_400(self, client):
        trace_id = client.create_trace()
        status, doc = client.request(
            "PUT", f"/v1/traces/{trace_id}/chunks/zero", body=b"{}")
        assert status == 400


class TestCacheKeying:
    def test_reupload_shares_one_graph_build(self, server, trace_lines):
        with ServeClient(server.base_url) as client:
            t1, _ = client.upload_trace(trace_lines)
            j1 = client.analyze(t1)
            client.wait(j1, timeout=60.0)
            builds_after_first = server.service.cache.graph_builds
            assert builds_after_first == 1
            # same bytes again: same content hash, zero new graph builds
            t2, ack2 = client.upload_trace(trace_lines)
            assert t2 != t1
            j2 = client.analyze(t2)
            doc2 = client.wait(j2, timeout=60.0)
            assert server.service.cache.graph_builds == builds_after_first
            # identical params: the whole result comes from cache
            assert doc2["cache_hit"] is True
            s1, r1 = client.report(j1)
            s2, r2 = client.report(j2)
            assert s1 == s2 == 200
            r1.pop("job_id"), r2.pop("job_id")
            r1.pop("trace_id"), r2.pop("trace_id")
            assert json.dumps(r1, sort_keys=True) == \
                json.dumps(r2, sort_keys=True)

    def test_distinct_params_rebuild_result_not_graph(self, server,
                                                      trace_lines):
        with ServeClient(server.base_url) as client:
            t1, _ = client.upload_trace(trace_lines)
            j1 = client.analyze(t1)
            client.wait(j1, timeout=60.0)
            j2 = client.analyze(t1, mode="indexed")
            doc2 = client.wait(j2, timeout=60.0)
            assert doc2["cache_hit"] is False
            assert server.service.cache.graph_builds == 1


class TestDegradedUpload:
    def test_truncated_upload_yields_partial_report(self, client,
                                                    trace_lines):
        # drop the tail (stats + end): an analyzable dense prefix
        trace_id = client.create_trace()
        for seq, line in enumerate(trace_lines[:-2]):
            assert client.upload_chunk(trace_id, seq, line)[0] == 200
        job_id = client.analyze(trace_id)
        doc = client.wait(job_id, timeout=60.0)
        assert doc["state"] == "degraded"
        status, report = client.report(job_id)
        assert status == 200
        assert report["coverage"]["complete"] is False
        for error in report["errors"]:
            assert any("incomplete evidence" in n for n in error["notes"])

    def test_header_only_upload_analyzes_empty(self, client):
        trace_id = client.create_trace()
        assert client.upload_chunk(trace_id, 0, header_line())[0] == 200
        assert client.upload_chunk(
            trace_id, 1, chunk_line(1, "end", {}))[0] == 200
        job_id = client.analyze(trace_id)
        doc = client.wait(job_id, timeout=60.0)
        assert doc["state"] in ("done", "degraded")
        status, report = client.report(job_id)
        assert status == 200
        assert report["error_count"] == 0


def test_read_trace_lines_round_trip(trace_file, trace_lines):
    assert trace_lines == read_trace_lines(trace_file)
    assert all(json.loads(line)["seq"] == i
               for i, line in enumerate(trace_lines))
    kinds = [json.loads(line)["kind"] for line in trace_lines]
    assert kinds[0] == "header" and kinds[-1] == "end"
