"""Unit tests for the chunk-upload state machine (no HTTP involved).

Every rejection must be a typed error from the :mod:`repro.errors`
taxonomy with structured fields, and must leave the upload's state
untouched so the client can retry the same seq.
"""

import json
import zlib

import pytest

from repro.core.trace import TRACE_VERSION
from repro.errors import (ResourceNotFound, TraceCorruptionError,
                          TraceFormatError, TraceVersionError,
                          UploadSequenceError)
from repro.obs.metrics import get_registry
from repro.serve.store import TraceStore

from tests.serve.conftest import chunk_line, header_line


@pytest.fixture
def store():
    return TraceStore()


@pytest.fixture
def open_upload(store):
    """A created upload with the header already accepted."""
    up = store.create()
    store.add_chunk(up.trace_id, 0, header_line())
    return up


class TestHappyPath:
    def test_dense_upload_completes(self, store):
        up = store.create()
        ack = store.add_chunk(up.trace_id, 0, header_line())
        assert ack["accepted"] and ack["next_seq"] == 1
        ack = store.add_chunk(up.trace_id, 1, chunk_line(1, "end", {}))
        assert ack["state"] == "complete"
        assert up.next_seq == 2
        assert len(up.chunks) == 2

    def test_unknown_trace_id(self, store):
        with pytest.raises(ResourceNotFound):
            store.get("t999")
        with pytest.raises(ResourceNotFound):
            store.add_chunk("t999", 0, header_line())

    def test_status_doc_shape(self, open_upload):
        doc = open_upload.to_dict()
        assert doc["state"] == "open"
        assert doc["chunks_accepted"] == 1
        assert doc["next_seq"] == 1
        assert len(doc["content_hash"]) == 64


class TestSequenceErrors:
    def test_out_of_order_gap(self, store, open_upload):
        with pytest.raises(UploadSequenceError) as exc:
            store.add_chunk(open_upload.trace_id, 2,
                            chunk_line(2, "segments", {"segments": []}))
        fields = exc.value.fields()
        assert fields["expected_seq"] == 1
        assert fields["got_seq"] == 2
        assert "out-of-order" in fields["reason"]

    def test_identical_duplicate_seq_is_idempotent(self, store, open_upload):
        # re-PUT of an accepted chunk with the same CRC: 200 no-op ack —
        # a resuming client must be able to resend a chunk whose ack it
        # never received
        hash_before = open_upload.content_hash
        ack = store.add_chunk(open_upload.trace_id, 0, header_line())
        assert ack["accepted"] and ack["duplicate"]
        assert ack["next_seq"] == 1
        assert open_upload.content_hash == hash_before
        assert len(open_upload.chunks) == 1

    def test_conflicting_duplicate_seq_rejected(self, store, open_upload):
        # same seq, different payload → different CRC → genuine conflict
        other = chunk_line(0, "header", {"segments": 777},
                           version=TRACE_VERSION,
                           schema="taskgrind-trace/2")
        with pytest.raises(UploadSequenceError) as exc:
            store.add_chunk(open_upload.trace_id, 0, other)
        assert "different content" in exc.value.fields()["reason"]

    def test_url_envelope_seq_mismatch(self, store, open_upload):
        # the *envelope* says seq 2, the URL says seq 1
        with pytest.raises(UploadSequenceError) as exc:
            store.add_chunk(open_upload.trace_id, 1,
                            chunk_line(2, "segments", {"segments": []}))
        assert "URL seq" in exc.value.fields()["reason"]

    def test_post_end_rejected(self, store, open_upload):
        store.add_chunk(open_upload.trace_id, 1, chunk_line(1, "end", {}))
        with pytest.raises(UploadSequenceError) as exc:
            store.add_chunk(open_upload.trace_id, 2,
                            chunk_line(2, "stats", {}))
        assert "complete" in exc.value.fields()["reason"]


class TestEdgeValidation:
    def test_undecodable_body(self, store):
        up = store.create()
        with pytest.raises(TraceFormatError):
            store.add_chunk(up.trace_id, 0, b"{not json")

    def test_non_object_body(self, store):
        up = store.create()
        with pytest.raises(TraceFormatError):
            store.add_chunk(up.trace_id, 0, b"[1, 2, 3]")

    def test_missing_envelope_keys(self, store):
        up = store.create()
        with pytest.raises(TraceFormatError):
            store.add_chunk(up.trace_id, 0,
                            json.dumps({"seq": 0, "kind": "header"}).encode())

    def test_crc_mismatch_counts_and_rejects(self, store, open_upload):
        line = chunk_line(1, "segments", {"segments": [1]})
        doc = json.loads(line)
        doc["crc"] = (doc["crc"] + 1) & 0xFFFFFFFF
        before = get_registry().counter("serve.ingest.crc_rejects").value
        with pytest.raises(TraceCorruptionError) as exc:
            store.add_chunk(open_upload.trace_id, 1, json.dumps(doc).encode())
        assert exc.value.chunk_seq == 1
        assert get_registry().counter(
            "serve.ingest.crc_rejects").value == before + 1

    def test_rejected_chunk_leaves_state_retryable(self, store, open_upload):
        bad = json.loads(chunk_line(1, "segments", {"segments": []}))
        bad["crc"] ^= 0xFF
        hash_before = open_upload.content_hash
        with pytest.raises(TraceCorruptionError):
            store.add_chunk(open_upload.trace_id, 1,
                            json.dumps(bad).encode())
        assert open_upload.next_seq == 1
        assert open_upload.content_hash == hash_before
        # the same seq retried with an intact line must now be accepted
        ack = store.add_chunk(open_upload.trace_id, 1,
                              chunk_line(1, "segments", {"segments": []}))
        assert ack["accepted"] and ack["next_seq"] == 2

    def test_chunk_zero_must_be_header(self, store):
        up = store.create()
        with pytest.raises(TraceFormatError, match="header"):
            store.add_chunk(up.trace_id, 0, chunk_line(0, "segments", {}))

    def test_chunk_zero_version_gate(self, store):
        up = store.create()
        bad = header_line(version=TRACE_VERSION + 97)
        with pytest.raises(TraceVersionError):
            store.add_chunk(up.trace_id, 0, bad)


class TestContentHash:
    def _upload(self, store, lines):
        up = store.create()
        for seq, line in enumerate(lines):
            store.add_chunk(up.trace_id, seq, line)
        return up.content_hash

    def test_envelope_noise_does_not_change_hash(self, store):
        payload = {"segments": [{"id": 1}], "extra": True}
        a = chunk_line(1, "segments", payload)
        # same payload, different envelope key order and whitespace
        doc = json.loads(a)
        b = json.dumps({k: doc[k] for k in
                        ("payload", "crc", "kind", "vtime", "seq")},
                       indent=1).encode()
        h1 = self._upload(store, [header_line(), a])
        h2 = self._upload(store, [header_line(), b])
        assert h1 == h2

    def test_payload_change_changes_hash(self, store):
        h1 = self._upload(store, [header_line(),
                                  chunk_line(1, "segments", {"n": 1})])
        h2 = self._upload(store, [header_line(),
                                  chunk_line(1, "segments", {"n": 2})])
        assert h1 != h2

    def test_crc_matches_writer_convention(self):
        # the store must accept exactly what the trace writer emits
        payload = {"b": 2, "a": 1}
        line = chunk_line(3, "stats", payload)
        doc = json.loads(line)
        canon = json.dumps(payload, sort_keys=True,
                           separators=(",", ":")).encode()
        assert doc["crc"] == zlib.crc32(canon) & 0xFFFFFFFF
