"""Crash-recovery tests: kill a durable server, restart it, compare.

The contract under test (INTERNALS §14): recovered state is a **prefix**
of the killed server's state.  Sealed uploads reappear byte-exactly,
partial uploads resume at the journaled ``next_seq``, terminal jobs keep
byte-identical reports, interrupted jobs re-enqueue exactly once, and a
journal truncated at *any* byte recovers a consistent prefix (the same
sweep discipline as ``tests/core/test_trace_salvage.py``).
"""

import json
import os
import shutil
import time

import pytest

from repro.errors import StateDirError
from repro.faults.inject import inject_plan
from repro.faults.plan import FaultPlan
from repro.serve import ServeClient, ServeConfig, ServerThread
from repro.serve.durable import ChunkStore, DurableLog, replay_wal
from repro.serve.wal import read_wal


def _config(state_dir) -> ServeConfig:
    # fsync=never keeps the suite fast; process-death durability is what
    # freeze() models, and these tests never actually SIGKILL the runner
    return ServeConfig(state_dir=str(state_dir), fsync="never", shards=2)


@pytest.fixture
def state_dir(tmp_path):
    return tmp_path / "state"


class TestUploadRecovery:
    def test_sealed_upload_survives_kill(self, state_dir, trace_lines):
        srv = ServerThread(_config(state_dir)).start()
        try:
            with ServeClient(srv.base_url) as client:
                trace_id, ack = client.upload_trace(trace_lines)
                hash_before = ack["content_hash"]
        finally:
            srv.kill()

        srv = ServerThread(_config(state_dir)).start()
        try:
            with ServeClient(srv.base_url) as client:
                doc = client.trace_status(trace_id)
                assert doc["state"] == "complete"
                assert doc["recovered"] is True
                assert doc["content_hash"] == hash_before
                assert doc["chunks_accepted"] == len(trace_lines)
        finally:
            srv.stop()

    def test_partial_upload_resumes_at_exact_seq(self, state_dir,
                                                 trace_lines):
        half = len(trace_lines) // 2
        srv = ServerThread(_config(state_dir)).start()
        try:
            with ServeClient(srv.base_url) as client:
                trace_id = client.create_trace()
                for seq in range(half):
                    status, _ = client.upload_chunk(trace_id, seq,
                                                    trace_lines[seq])
                    assert status == 200
        finally:
            srv.kill()

        srv = ServerThread(_config(state_dir)).start()
        try:
            with ServeClient(srv.base_url) as client:
                doc = client.trace_status(trace_id)
                assert doc["state"] == "open"
                assert doc["next_seq"] == half
                # the resume helper reads next_seq and sends the suffix
                _tid, ack = client.upload_trace(trace_lines,
                                                resume=trace_id)
                assert ack["state"] == "complete"
                # the recovered+resumed hash matches a one-shot upload
                t2, ack2 = client.upload_trace(trace_lines)
                assert t2 != trace_id
                assert ack2["content_hash"] == ack["content_hash"]
        finally:
            srv.stop()

    def test_recovered_ids_are_never_reissued(self, state_dir, trace_lines):
        srv = ServerThread(_config(state_dir)).start()
        try:
            with ServeClient(srv.base_url) as client:
                first_id = client.create_trace()
        finally:
            srv.kill()
        srv = ServerThread(_config(state_dir)).start()
        try:
            with ServeClient(srv.base_url) as client:
                assert client.create_trace() != first_id
        finally:
            srv.stop()


class TestJobRecovery:
    def test_terminal_job_report_is_byte_identical(self, state_dir,
                                                   trace_lines):
        srv = ServerThread(_config(state_dir)).start()
        try:
            with ServeClient(srv.base_url) as client:
                trace_id, _ = client.upload_trace(trace_lines)
                job_id = client.analyze(trace_id)
                done = client.wait(job_id, timeout=60.0)
                assert done["state"] == "done"
                status, report_before = client.report(job_id)
                assert status == 200
        finally:
            srv.kill()

        srv = ServerThread(_config(state_dir)).start()
        try:
            with ServeClient(srv.base_url) as client:
                doc = client.job(job_id)
                assert doc["state"] == "done"
                assert doc["recovered"] is True
                status, report_after = client.report(job_id)
                assert status == 200
                assert json.dumps(report_after, sort_keys=True) == \
                    json.dumps(report_before, sort_keys=True)
                # a recovered terminal job must NOT have re-executed
                assert srv.service.pool.get(job_id).executions == 0
        finally:
            srv.stop()

    def test_interrupted_job_reenqueued_exactly_once(self, state_dir,
                                                     trace_lines):
        srv = ServerThread(_config(state_dir)).start()
        try:
            with ServeClient(srv.base_url) as client:
                trace_id, _ = client.upload_trace(trace_lines)
                # slow the executor so the kill lands mid-run
                with inject_plan(FaultPlan.single("worker-hang", 0,
                                                  seconds=0.4, times=1)):
                    job_id = client.analyze(trace_id)
                    time.sleep(0.05)
                    srv.kill()      # inside the plan: the hang is live
        finally:
            pass

        srv = ServerThread(_config(state_dir)).start()
        try:
            recovered = srv.service.durable.recovered
            assert [j.job_id for j in recovered.requeue_jobs] == [job_id]
            with ServeClient(srv.base_url) as client:
                done = client.wait(job_id, timeout=60.0)
                assert done["state"] == "done"
            # exactly one execution in the recovered process
            assert srv.service.pool.get(job_id).executions == 1
        finally:
            srv.stop()

        # a THIRD restart must not re-enqueue: the terminal record exists
        srv = ServerThread(_config(state_dir)).start()
        try:
            assert srv.service.durable.recovered.requeue_jobs == []
            assert srv.service.pool.get(job_id).state == "done"
        finally:
            srv.stop()


class TestCleanVsCrash:
    def test_graceful_stop_is_clean(self, state_dir, trace_lines):
        srv = ServerThread(_config(state_dir)).start()
        try:
            with ServeClient(srv.base_url) as client:
                client.upload_trace(trace_lines)
        finally:
            srv.stop()
        srv = ServerThread(_config(state_dir)).start()
        try:
            assert srv.service.durable.recovered.clean is True
        finally:
            srv.stop()

    def test_kill_is_a_crash(self, state_dir, trace_lines):
        srv = ServerThread(_config(state_dir)).start()
        try:
            with ServeClient(srv.base_url) as client:
                client.upload_trace(trace_lines)
        finally:
            srv.kill()
        srv = ServerThread(_config(state_dir)).start()
        try:
            assert srv.service.durable.recovered.clean is False
        finally:
            srv.stop()

    def test_drain_finishes_jobs_then_marks_clean(self, state_dir,
                                                  trace_lines):
        srv = ServerThread(_config(state_dir)).start()
        with ServeClient(srv.base_url) as client:
            trace_id, _ = client.upload_trace(trace_lines)
            job_id = client.analyze(trace_id)
        srv.drain()         # graceful SIGTERM path: queued job completes
        srv = ServerThread(_config(state_dir)).start()
        try:
            assert srv.service.durable.recovered.clean is True
            job = srv.service.pool.get(job_id)
            assert job.state == "done"      # terminal record was journaled
            assert srv.service.durable.recovered.requeue_jobs == []
        finally:
            srv.stop()


class TestStateDirRefusal:
    def test_unusable_state_dir_raises(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        with pytest.raises(StateDirError, match="not-a-dir"):
            DurableLog(str(blocker))

    def test_server_thread_refuses_bad_state_dir(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        with pytest.raises(StateDirError):
            ServerThread(ServeConfig(state_dir=str(blocker)))


class TestTruncationSweep:
    """Satellite of ``tests/core/test_trace_salvage.py``: cut the journal
    at EVERY byte offset and prove recovery never invents state."""

    def _full_state(self, state_dir, trace_lines):
        srv = ServerThread(_config(state_dir)).start()
        try:
            with ServeClient(srv.base_url) as client:
                trace_id, _ = client.upload_trace(trace_lines)
                job_id = client.analyze(trace_id)
                client.wait(job_id, timeout=60.0)
        finally:
            srv.kill()
        return trace_id, job_id

    def test_every_truncation_point_is_prefix(self, state_dir, trace_lines,
                                              tmp_path):
        self._full_state(state_dir, trace_lines)
        wal_path = state_dir / "wal.jsonl"
        data = wal_path.read_bytes()
        chunks = ChunkStore(str(state_dir / "chunks"), fsync=False)
        full_records, _ = read_wal(str(wal_path))
        full = replay_wal(full_records, chunks)
        full_uploads = {tid: [c for c in up.chunks]
                        for tid, up in full.uploads.items()}

        cut_wal = tmp_path / "cut.jsonl"
        step = max(1, len(data) // 60)
        for cut in range(0, len(data) + 1, step):
            cut_wal.write_bytes(data[:cut])
            try:
                records, info = read_wal(str(cut_wal))
            except StateDirError:
                # the header itself is torn: nothing recoverable, which
                # still invents nothing
                continue
            st = replay_wal(records, chunks)
            assert not info["clean"] or cut == len(data)
            # uploads: a subset, and each one a chunk-prefix of the full
            for tid, up in st.uploads.items():
                assert tid in full_uploads
                full_chunks = full_uploads[tid]
                assert len(up.chunks) <= len(full_chunks)
                for i, doc in enumerate(up.chunks):
                    assert doc == full_chunks[i]
                if up.sealed:
                    assert full.uploads[tid].sealed
                    assert len(up.chunks) == len(full_chunks)
                    assert up.content_hash == full.uploads[tid].content_hash
            # jobs: a subset; terminal only if terminal in the full replay
            for jid, job in st.jobs.items():
                assert jid in full.jobs
                if job.state is not None:
                    assert job.state == full.jobs[jid].state
                    assert job.result == full.jobs[jid].result

    def test_truncated_journal_still_boots_a_server(self, state_dir,
                                                    trace_lines, tmp_path):
        """End to end: cut mid-journal, copy the state dir, boot, resume."""
        trace_id, _job_id = self._full_state(state_dir, trace_lines)
        wal_path = state_dir / "wal.jsonl"
        data = wal_path.read_bytes()
        # cut inside the upload's chunk records: header + created + a few
        cut = data.find(b"\n", len(data) // 3) + 1
        clone = tmp_path / "clone"
        shutil.copytree(str(state_dir), str(clone))
        (clone / "wal.jsonl").write_bytes(data[:cut])

        srv = ServerThread(_config(clone)).start()
        try:
            with ServeClient(srv.base_url) as client:
                doc = client.trace_status(trace_id)
                assert doc["state"] == "open"       # seal was cut away
                assert 0 < doc["next_seq"] < len(trace_lines)
                _tid, ack = client.upload_trace(trace_lines,
                                                resume=trace_id)
                assert ack["state"] == "complete"
                job_id = client.analyze(trace_id)
                assert client.wait(job_id, timeout=60.0)["state"] == "done"
        finally:
            srv.stop()
