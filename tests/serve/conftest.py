"""Shared fixtures for the ingestion-server tests: one recorded racy
trace (session-scoped — the runs are deterministic) plus an in-process
server/client pair per test."""

from __future__ import annotations

import json
import zlib

import pytest

from repro.core.tool import TaskgrindOptions, TaskgrindTool
from repro.core.trace import TRACE_VERSION, save_trace
from repro.machine.machine import Machine
from repro.openmp.api import make_env
from repro.serve import ServeClient, ServeConfig, ServerThread
from repro.serve.client import read_trace_lines


def _racy_listing(env):
    ctx = env.ctx
    x = ctx.malloc(8, line=3, name="x")

    def single_body():
        ctx.line(8)
        env.task(lambda tv: x.write(0, line=9), name="t8")
        ctx.line(11)
        env.task(lambda tv: x.write(0, line=12), name="t11")

    env.parallel_single(single_body)


@pytest.fixture(scope="session")
def trace_file(tmp_path_factory):
    machine = Machine(seed=0)
    tool = TaskgrindTool(TaskgrindOptions())
    machine.add_tool(tool)
    env = make_env(machine, nthreads=4)
    env.rt.ompt.register(tool.make_ompt_shim())

    def main():
        with env.ctx.function("main", line=1):
            _racy_listing(env)

    machine.run(main)
    tool.finalize()
    path = tmp_path_factory.mktemp("serve") / "racy.trace.json"
    save_trace(tool, machine, str(path))
    return str(path)


@pytest.fixture(scope="session")
def trace_lines(trace_file):
    return read_trace_lines(trace_file)


@pytest.fixture
def server():
    with ServerThread(ServeConfig()) as srv:
        yield srv


@pytest.fixture
def client(server):
    with ServeClient(server.base_url) as c:
        yield c


def chunk_line(seq: int, kind: str, payload, **extras) -> bytes:
    """A valid ``taskgrind-trace/2`` chunk line (correct CRC) for unit
    tests that drive the upload state machine with synthetic chunks."""
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    doc = {"seq": seq, "kind": kind, "vtime": 0.0,
           "crc": zlib.crc32(canon.encode()) & 0xFFFFFFFF,
           "payload": payload}
    doc.update(extras)
    return json.dumps(doc).encode()


def header_line(**extras) -> bytes:
    extras.setdefault("version", TRACE_VERSION)
    extras.setdefault("schema", "taskgrind-trace/2")
    return chunk_line(0, "header", {"segments": 0}, **extras)
