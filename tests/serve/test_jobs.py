"""Unit tests for the sharded job pool and the per-job timeline."""

import asyncio

import pytest

from repro.errors import JobStateError, ResourceNotFound
from repro.obs.tracecheck import validate_events
from repro.serve.jobs import JobPool


def _pool(execute=lambda job: ({"error_count": 0}, False), shards=4):
    return JobPool(execute, shards=shards)


class TestShardAffinity:
    def test_shard_is_deterministic_in_content_hash(self):
        pool = _pool(shards=4)
        h = "deadbeef" + "0" * 56
        assert pool.shard_of(h) == pool.shard_of(h)
        assert pool.shard_of(h) == int("deadbeef", 16) % 4
        assert 0 <= pool.shard_of("") < 4

    def test_same_hash_same_shard_across_jobs(self):
        pool = _pool(shards=3)
        a = pool.create("t1", "ab" * 32, {})
        b = pool.create("t2", "ab" * 32, {})
        assert a.shard == b.shard
        assert a.job_id != b.job_id


class TestJobStates:
    def test_report_before_terminal_is_job_state_error(self):
        pool = _pool()
        job = pool.create("t1", "00" * 32, {})
        with pytest.raises(JobStateError) as exc:
            pool.report_of(job.job_id)
        assert exc.value.fields()["state"] == "queued"

    def test_unknown_job_is_resource_not_found(self):
        with pytest.raises(ResourceNotFound):
            _pool().get("j999")

    def test_failed_job_has_no_report(self):
        def boom(job):
            raise ValueError("executor exploded")

        pool = _pool(execute=boom)

        async def drive():
            await pool.start()
            try:
                job = pool.create("t1", "00" * 32, {})
                await pool.submit(job)
                await asyncio.get_event_loop().run_in_executor(
                    None, job.wait, 10.0)
                return job
            finally:
                await pool.stop()

        job = asyncio.run(drive())
        assert job.state == "failed"
        assert job.error["type"] == "ValueError"
        with pytest.raises(JobStateError, match="exploded"):
            pool.report_of(job.job_id)

    def test_degraded_flag_from_executor(self):
        pool = _pool(execute=lambda job: ({"error_count": 1}, True))

        async def drive():
            await pool.start()
            try:
                job = pool.create("t1", "00" * 32, {})
                await pool.submit(job)
                await asyncio.get_event_loop().run_in_executor(
                    None, job.wait, 10.0)
                return job
            finally:
                await pool.stop()

        job = asyncio.run(drive())
        assert job.state == "degraded"
        assert pool.report_of(job.job_id) == {"error_count": 1}


class TestTimeline:
    def test_span_booking_and_chrome_schema(self):
        pool = _pool()
        job = pool.create("t1", "00" * 32, {})
        job.started_at = job.submitted_at + 0.001
        with job.span("build"):
            pass
        with job.span("analyze"):
            pass
        events = job.timeline_events()
        validate_events(events)
        names = [e["name"] for e in events if e["ph"] == "X"]
        assert names[0] == "queue-wait"
        assert "build" in names and "analyze" in names
        assert all(e["tid"] == job.shard for e in events)

    def test_status_dict_carries_phases(self):
        pool = _pool()
        job = pool.create("t1", "00" * 32, {"mode": "parallel"})
        with job.span("build"):
            pass
        doc = job.status_dict()
        assert doc["state"] == "queued"
        assert "build" in doc["phases"]
        assert doc["params"]["mode"] == "parallel"
        assert doc["queue_wait_s"] >= 0
