"""Unit tests for the write-ahead journal and the chunk store.

The WAL inherits the ``taskgrind-trace/2`` salvage discipline: these
tests pin the framing (CRC-checked dense-seq records), the fsync policy
knob, the two injected failure modes (torn write, server kill), and the
content-addressed chunk store's atomicity/dedupe contract.
"""

import json
import os

import pytest

from repro.core.trace import _payload_crc
from repro.errors import InjectedFault, StateDirError
from repro.faults.inject import inject_plan
from repro.faults.plan import FaultPlan
from repro.obs.metrics import get_registry
from repro.serve.durable import ChunkStore
from repro.serve.wal import (WAL_SCHEMA, WAL_VERSION, WalWriter, read_wal)


def _open_writer(tmp_path, **kw):
    path = str(tmp_path / "wal.jsonl")
    fh = open(path, "wb")
    kw.setdefault("fsync_policy", "never")
    return path, WalWriter(fh, **kw)


class TestWriterReaderRoundTrip:
    def test_records_round_trip(self, tmp_path):
        path, w = _open_writer(tmp_path)
        w.append("upload-created", {"trace_id": "t1"})
        w.append("chunk-accepted", {"trace_id": "t1", "seq": 0,
                                    "kind": "header", "digest": "ab" * 32})
        w.close()
        records, info = read_wal(path)
        assert [r.kind for r in records] == \
            ["header", "upload-created", "chunk-accepted"]
        assert [r.seq for r in records] == [0, 1, 2]
        assert records[0].payload == {"schema": WAL_SCHEMA,
                                      "version": WAL_VERSION}
        assert records[2].payload["digest"] == "ab" * 32
        assert info["dropped"] == 0 and not info["clean"]

    def test_clean_shutdown_detected(self, tmp_path):
        path, w = _open_writer(tmp_path)
        w.append("upload-created", {"trace_id": "t1"})
        w.append("clean-shutdown", {})
        w.close()
        _records, info = read_wal(path)
        assert info["clean"] is True

    def test_frozen_writer_appends_nothing(self, tmp_path):
        path, w = _open_writer(tmp_path)
        w.append("upload-created", {"trace_id": "t1"})
        w.freeze()
        w.append("clean-shutdown", {})       # a dead process writes nothing
        w.close()
        records, info = read_wal(path)
        assert [r.kind for r in records] == ["header", "upload-created"]
        assert not info["clean"]

    def test_wrong_schema_refused(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        payload = {"schema": "somebody-elses-journal/9", "version": 9}
        doc = {"seq": 0, "kind": "header",
               "crc": _payload_crc(payload), "payload": payload}
        with open(path, "w") as fh:
            fh.write(json.dumps(doc, sort_keys=True,
                                separators=(",", ":")) + "\n")
        with pytest.raises(StateDirError, match="somebody-elses"):
            read_wal(path)

    def test_bad_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fsync policy"):
            _open_writer(tmp_path, fsync_policy="sometimes")


class TestSalvagePrefix:
    def test_torn_trailing_line_dropped(self, tmp_path):
        path, w = _open_writer(tmp_path)
        w.append("upload-created", {"trace_id": "t1"})
        w.close()
        with open(path, "ab") as fh:
            fh.write(b'{"seq": 2, "kind": "torn')
        records, info = read_wal(path)
        assert [r.kind for r in records] == ["header", "upload-created"]
        assert info["dropped"] == 1
        assert "undecodable" in info["errors"][0]

    def test_crc_flip_stops_the_prefix(self, tmp_path):
        path, w = _open_writer(tmp_path)
        for i in range(4):
            w.append("upload-created", {"trace_id": f"t{i}"})
        w.close()
        lines = open(path, "rb").read().splitlines()
        doc = json.loads(lines[2])
        doc["payload"]["trace_id"] = "tFORGED"    # payload no longer matches crc
        lines[2] = json.dumps(doc, sort_keys=True,
                              separators=(",", ":")).encode()
        with open(path, "wb") as fh:
            fh.write(b"\n".join(lines) + b"\n")
        records, info = read_wal(path)
        # records 3 and 4 were intact but follow the damage: untrusted
        assert len(records) == 2
        assert info["dropped"] == 3
        assert "checksum" in info["errors"][0]

    def test_seq_gap_stops_the_prefix(self, tmp_path):
        path, w = _open_writer(tmp_path)
        w.append("upload-created", {"trace_id": "t1"})
        w.close()
        payload = {"trace_id": "t9"}
        doc = {"seq": 7, "kind": "upload-created",
               "crc": _payload_crc(payload), "payload": payload}
        with open(path, "ab") as fh:
            fh.write(json.dumps(doc, sort_keys=True,
                                separators=(",", ":")).encode() + b"\n")
        records, info = read_wal(path)
        assert len(records) == 2
        assert "dense prefix" in info["errors"][0]


class TestFsyncPolicies:
    def test_always_fsyncs_every_record(self, tmp_path):
        before = get_registry().counter("serve.wal.fsyncs").value
        _path, w = _open_writer(tmp_path, fsync_policy="always")
        w.append("upload-created", {"trace_id": "t1"})
        w.append("upload-created", {"trace_id": "t2"})
        after = get_registry().counter("serve.wal.fsyncs").value
        w.close()
        assert after - before == 3      # header + two records

    def test_interval_batches_fsyncs(self, tmp_path):
        before = get_registry().counter("serve.wal.fsyncs").value
        _path, w = _open_writer(tmp_path, fsync_policy="interval",
                                fsync_interval=4)
        for i in range(7):              # + header = 8 records = 2 batches
            w.append("upload-created", {"trace_id": f"t{i}"})
        mid = get_registry().counter("serve.wal.fsyncs").value
        assert mid - before == 2
        w.sync()                        # nothing pending: no extra fsync
        assert get_registry().counter("serve.wal.fsyncs").value == mid
        w.append("upload-created", {"trace_id": "t9"})
        w.sync()                        # one pending record force-synced
        assert get_registry().counter("serve.wal.fsyncs").value == mid + 1
        w.close()

    def test_never_policy_never_fsyncs(self, tmp_path):
        before = get_registry().counter("serve.wal.fsyncs").value
        _path, w = _open_writer(tmp_path, fsync_policy="never")
        for i in range(10):
            w.append("upload-created", {"trace_id": f"t{i}"})
        w.sync()
        w.close()
        assert get_registry().counter("serve.wal.fsyncs").value == before


class TestInjectedFaults:
    def test_torn_write_freezes_and_leaves_half_line(self, tmp_path):
        path, w = _open_writer(tmp_path)
        with inject_plan(FaultPlan.single("wal-torn-write", 2)) as inj:
            w.append("upload-created", {"trace_id": "t1"})      # seq 1
            w.append("chunk-accepted", {"trace_id": "t1", "seq": 0,
                                        "kind": "header",
                                        "digest": "00" * 32})   # seq 2: torn
            assert w.frozen
            w.append("upload-created", {"trace_id": "t2"})      # dropped
            assert inj.plan.fired_summary() == {"wal-torn-write@2": 1}
        w.close()
        records, info = read_wal(path)
        assert [r.kind for r in records] == ["header", "upload-created"]
        assert info["dropped"] == 1

    def test_kill_server_raises_and_freezes(self, tmp_path):
        path, w = _open_writer(tmp_path)
        with inject_plan(FaultPlan.single("kill-server", 1)):
            with pytest.raises(InjectedFault, match="kill-server"):
                w.append("upload-created", {"trace_id": "t1"})
            assert w.frozen
            w.append("upload-created", {"trace_id": "t2"})      # dropped
        w.close()
        records, _info = read_wal(path)
        assert [r.kind for r in records] == ["header"]


class TestChunkStore:
    def test_put_get_round_trip(self, tmp_path):
        cs = ChunkStore(str(tmp_path / "chunks"), fsync=False)
        digest = cs.put(b"hello chunks")
        assert cs.has(digest)
        assert cs.get(digest) == b"hello chunks"

    def test_prefix_dir_layout(self, tmp_path):
        cs = ChunkStore(str(tmp_path / "chunks"), fsync=False)
        digest = cs.put(b"x")
        assert os.path.exists(os.path.join(str(tmp_path / "chunks"),
                                           digest[:2], digest))

    def test_dedupe(self, tmp_path):
        cs = ChunkStore(str(tmp_path / "chunks"), fsync=False)
        before = get_registry().counter("serve.chunkstore.writes").value
        d1 = cs.put(b"same body")
        d2 = cs.put(b"same body")
        assert d1 == d2
        assert get_registry().counter(
            "serve.chunkstore.writes").value == before + 1

    def test_missing_digest_is_none(self, tmp_path):
        cs = ChunkStore(str(tmp_path / "chunks"), fsync=False)
        assert cs.get("ff" * 32) is None
        assert not cs.has("ff" * 32)

    def test_bit_rot_detected(self, tmp_path):
        cs = ChunkStore(str(tmp_path / "chunks"), fsync=False)
        digest = cs.put(b"precious bytes")
        path = os.path.join(cs.root, digest[:2], digest)
        with open(path, "wb") as fh:
            fh.write(b"precious bytEs")
        # a blob that no longer matches its digest is treated as lost,
        # never served as if intact
        assert cs.get(digest) is None

    def test_no_tmp_litter(self, tmp_path):
        cs = ChunkStore(str(tmp_path / "chunks"), fsync=False)
        for i in range(5):
            cs.put(f"body {i}".encode())
        litter = [name for _root, _dirs, files in os.walk(cs.root)
                  for name in files if name.startswith(".tmp-")]
        assert litter == []
