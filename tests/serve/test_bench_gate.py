"""Tests for the load-generator helpers and the serve side of the perf
gate: breach naming, blame lines, the chaos degradation contract, and
the distinct exit code for an unusable baseline."""

import json

import pytest

import repro.bench.perf as perf
from repro.bench.perf import EXIT_BASELINE_UNUSABLE, compare_to_baseline
from repro.bench.serve import (_check_chaos_outcome, _race_key,
                               _summarize_ms, _well_formed_partial,
                               percentile)


class TestPercentile:
    def test_nearest_rank(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert percentile(samples, 0.50) == 5.0
        assert percentile(samples, 0.95) == 10.0
        assert percentile(samples, 0.0) == 1.0

    def test_empty_and_singleton(self):
        assert percentile([], 0.95) == 0.0
        assert percentile([7.5], 0.50) == 7.5

    def test_summary_shape(self):
        doc = _summarize_ms([1.0, 2.0, 3.0])
        assert doc["count"] == 3
        assert doc["p50_ms"] == 2.0
        assert doc["mean_ms"] == 2.0


class TestRaceKey:
    ERROR = {
        "kind": "DeterminacyRace",
        "segments": [{"label": "t8", "thread": 1, "access": "a.c:9"},
                     {"label": "t11", "thread": 2, "access": "a.c:12"}],
        "conflict": {"ranges": [[0, 8]], "bytes": 8, "region": "heap"},
        "allocation": {"block": 4096, "size": 8, "site": "a.c:3"},
        "witness": None,
        "notes": [],
    }

    def test_ignores_evidence_dependent_fields(self):
        degraded = json.loads(json.dumps(self.ERROR))
        degraded["notes"] = ["incomplete evidence: 2 chunks lost"]
        degraded["allocation"] = None           # environment chunk lost
        degraded["conflict"]["region"] = "unknown"
        assert _race_key(self.ERROR) == _race_key(degraded)

    def test_distinguishes_actual_races(self):
        other = json.loads(json.dumps(self.ERROR))
        other["conflict"]["ranges"] = [[8, 16]]
        assert _race_key(self.ERROR) != _race_key(other)


def _report(resilience=None):
    doc = {"schema": "taskgrind-serve-report/1", "errors": [],
           "error_count": 0, "coverage": {"complete": False},
           "analysis": {"mode": "parallel", "reports": 0}}
    if resilience is not None:
        doc["analysis"]["resilience"] = resilience
    return doc


class TestWellFormedPartial:
    def test_accepts_real_shape(self):
        res = {"schema": "taskgrind-partial-analysis/1", "complete": False,
               "pairs": {"total": 10, "checked": 7, "unchecked": 3}}
        assert _well_formed_partial(_report(res)) == []
        assert _well_formed_partial(_report()) == []

    def test_flags_missing_pairs_accounting(self):
        problems = _well_formed_partial(_report({"complete": False}))
        assert any("unchecked-pairs" in p for p in problems)

    def test_flags_missing_top_level_keys(self):
        doc = _report()
        del doc["coverage"]
        assert any("coverage" in p for p in _well_formed_partial(doc))


class TestChaosContract:
    BASE = {"trace": "heat", "plan": "save-crash@1"}

    def test_hang_is_fatal(self):
        out = dict(self.BASE, hang="job j3 still running after 60s")
        problems = _check_chaos_outcome(out, set())
        assert len(problems) == 1 and "HANG" in problems[0]

    def test_invented_race_is_flagged(self):
        race = {"kind": "DeterminacyRace", "segments": [],
                "conflict": {"ranges": [[0, 8]], "bytes": 8}}
        out = dict(self.BASE, job_state="degraded",
                   report=dict(_report(), errors=[race], error_count=1))
        problems = _check_chaos_outcome(out, clean=set())
        assert any("INVENTED" in p for p in problems)
        # same race present in the clean universe: no violation
        assert _check_chaos_outcome(out, clean={_race_key(race)}) == []

    def test_failed_job_violates(self):
        out = dict(self.BASE, job_state="failed",
                   report_error={"status": 409})
        problems = _check_chaos_outcome(out, set())
        assert any("partial report" in p for p in problems)

    def test_untyped_edge_rejection_violates(self):
        out = dict(self.BASE, job_state="degraded", report=_report(),
                   edge_status=500, edge_error={})
        problems = _check_chaos_outcome(out, set())
        assert any("untyped" in p for p in problems)


# ---------------------------------------------------------------------------
# the serve side of compare_to_baseline
# ---------------------------------------------------------------------------

def _serve_block(tp=1000.0, upload_p95=1.0, analyze_p95=5.0):
    return {
        "throughput_chunks_per_s": tp,
        "endpoints": {
            "upload_chunk": {"count": 40, "p50_ms": upload_p95 / 2,
                             "p95_ms": upload_p95, "mean_ms": upload_p95 / 2},
            "report": {"count": 10, "p50_ms": 0.5, "p95_ms": 1.0,
                       "mean_ms": 0.6},
        },
        "job_phases": {
            "build": {"count": 10, "p50_ms": 0.5, "p95_ms": 1.0},
            "analyze": {"count": 10, "p50_ms": 2.0, "p95_ms": analyze_p95},
        },
    }


class TestServeGate:
    def test_identical_blocks_pass(self):
        ok, lines = compare_to_baseline({"serve": _serve_block()},
                                        {"serve": _serve_block()}, 0.4)
        assert ok, lines
        assert any("throughput" in line for line in lines)

    def test_throughput_floor_breach_names_serve(self):
        ok, lines = compare_to_baseline({"serve": _serve_block(tp=100.0)},
                                        {"serve": _serve_block(tp=1000.0)},
                                        0.4)
        assert not ok
        assert any("breached tolerance: serve/throughput" in line
                   for line in lines)

    def test_p95_ceiling_breach_names_endpoint_and_phase(self):
        fresh = {"serve": _serve_block(upload_p95=50.0, analyze_p95=60.0)}
        base = {"serve": _serve_block(upload_p95=1.0, analyze_p95=5.0)}
        ok, lines = compare_to_baseline(fresh, base, 0.4)
        assert not ok
        breach = [ln for ln in lines if ln.startswith("breached")][0]
        assert "serve/upload_chunk.p95" in breach
        # the blame line names the job phase whose p95 grew the most
        assert any("top regressing phase 'analyze'" in ln for ln in lines)

    def test_breach_without_phase_growth_blames_http_side(self):
        fresh = {"serve": _serve_block(upload_p95=50.0)}
        base = {"serve": _serve_block(upload_p95=1.0)}
        ok, lines = compare_to_baseline(fresh, base, 0.4)
        assert not ok
        assert any("HTTP/queueing-side regression" in ln for ln in lines)

    def test_serve_only_documents_are_comparable(self):
        # no workloads at all must not trip the no-common-workloads guard
        ok, lines = compare_to_baseline({"serve": _serve_block()},
                                        {"serve": _serve_block()}, 0.4)
        assert ok
        assert lines != ["no common workloads between fresh run and baseline"]

    def test_absolute_grace_absorbs_submillisecond_noise(self):
        # 0.1ms -> 0.55ms is >5x relative, but within the absolute grace
        fresh = {"serve": _serve_block(upload_p95=0.55)}
        base = {"serve": _serve_block(upload_p95=0.1)}
        ok, _lines = compare_to_baseline(fresh, base, 0.4)
        assert ok

    def test_lost_endpoint_measurement_is_a_breach(self):
        fresh = {"serve": _serve_block()}
        del fresh["serve"]["endpoints"]["report"]
        ok, lines = compare_to_baseline(fresh, {"serve": _serve_block()},
                                        0.4)
        assert not ok
        assert any("serve/report.p95" in line for line in lines)


# ---------------------------------------------------------------------------
# --baseline exit codes (repro.bench.perf)
# ---------------------------------------------------------------------------

def _wl_entry(speedup=2.0):
    return {"segments": 2, "edges": 1, "raw_records": 10, "events": 10,
            "events_dropped": 0, "hb_exact": True, "hb_inexact_reason": None,
            "record": {"legacy_s": 1.0, "fast_s": 0.5, "speedup": 2.0},
            "record_sync": {"full_s": 1.0, "sync_s": 0.25, "speedup": 4.0},
            "analyze": {"legacy_s": 1.0, "fast_s": 0.5, "speedup": speedup,
                        "kernel": "python", "candidates": 1},
            "combined_speedup": speedup,
            "stats": {"phases": {}, "record_counters": {}},
            "profile": {"classes": {"mem.read": 10.0}, "vtime_ops": 10.0}}


def _fake_doc():
    return {"bench": "perf", "element_bytes": 8, "max_events": 10,
            "repeats": 1,
            "workloads": {"fib": _wl_entry(), "heat": _wl_entry()}}


@pytest.fixture
def fake_perf(monkeypatch, tmp_path):
    monkeypatch.setattr(perf, "run_perf", lambda **kw: _fake_doc())
    return tmp_path


class TestBaselineExitCodes:
    def _main(self, tmp_path, baseline_arg):
        return perf.main(["--skip-lulesh", "--repeats", "1",
                          "--json", str(tmp_path / "fresh.json"),
                          "--baseline", baseline_arg])

    def test_missing_baseline_file(self, fake_perf, capsys):
        rc = self._main(fake_perf, str(fake_perf / "nope.json"))
        assert rc == EXIT_BASELINE_UNUSABLE
        assert "regenerate" in capsys.readouterr().err

    def test_unparseable_baseline(self, fake_perf):
        bad = fake_perf / "bad.json"
        bad.write_text("{not json")
        assert self._main(fake_perf, str(bad)) == EXIT_BASELINE_UNUSABLE

    def test_baseline_lacking_gated_workload(self, fake_perf, capsys):
        partial = fake_perf / "partial.json"
        doc = _fake_doc()
        del doc["workloads"]["heat"]
        partial.write_text(json.dumps(doc))
        assert self._main(fake_perf, str(partial)) == EXIT_BASELINE_UNUSABLE
        assert "heat" in capsys.readouterr().err

    def test_usable_baseline_passes(self, fake_perf):
        good = fake_perf / "good.json"
        good.write_text(json.dumps(_fake_doc()))
        assert self._main(fake_perf, str(good)) == 0

    def test_real_regression_still_exits_one(self, fake_perf, monkeypatch):
        slow = _fake_doc()
        for wl in slow["workloads"].values():
            wl["combined_speedup"] = 0.5
            wl["analyze"]["speedup"] = 0.5
        monkeypatch.setattr(perf, "run_perf", lambda **kw: slow)
        good = fake_perf / "base.json"
        good.write_text(json.dumps(_fake_doc()))
        assert self._main(fake_perf, str(good)) == 1
