"""Edge-case tests for the guest programming API (Buffer, GuestContext)."""

import pytest

from repro.errors import MachineError
from repro.machine.machine import Machine
from repro.machine.program import GuestContext
from repro.vex.tool import Tool


class Capture(Tool):
    name = "cap"
    is_dbi = True

    def __init__(self):
        super().__init__()
        self.events = []

    def on_access(self, e):
        self.events.append(e)


def run(body, tool=None):
    machine = Machine(seed=0)
    if tool is not None:
        machine.add_tool(tool)
    ctx = GuestContext(machine)
    machine.run(lambda: body(ctx))
    return machine


class TestBuffer:
    def test_index_addressing(self):
        def body(ctx):
            with ctx.function("main"):
                buf = ctx.malloc(40, elem=4)
                assert buf.index_addr(0) == buf.addr
                assert buf.index_addr(3) == buf.addr + 12
                assert buf.end == buf.addr + 40
        run(body)

    def test_write_read_value_roundtrip(self):
        def body(ctx):
            with ctx.function("main"):
                buf = ctx.malloc(16, elem=8)
                buf.write(1, "payload")
                assert buf.read(1) == "payload"
                assert buf.read(0) == 0          # untouched default
        run(body)

    def test_empty_range_is_noop(self):
        tool = Capture()

        def body(ctx):
            with ctx.function("main"):
                buf = ctx.malloc(64, elem=8)
                buf.write_range(3, 3)
                buf.read_range(5, 2)
        run(body, tool)
        assert tool.events == []

    def test_range_event_sizes(self):
        tool = Capture()

        def body(ctx):
            with ctx.function("main"):
                buf = ctx.malloc(64, elem=8)
                buf.write_range(0, 8)
        run(body, tool)
        (event,) = tool.events
        assert event.size == 64 and event.is_write

    def test_atomic_accesses(self):
        tool = Capture()

        def body(ctx):
            with ctx.function("main"):
                buf = ctx.malloc(8, elem=8)
                buf.write(0, atomic=True)
                buf.read(0, atomic=True)
        run(body, tool)
        assert all(e.atomic for e in tool.events)

    def test_per_access_line_override(self):
        tool = Capture()

        def body(ctx):
            with ctx.function("main", line=1):
                buf = ctx.malloc(8)
                buf.write(0, line=42)
                buf.read(0)                      # inherits line 42
        run(body, tool)
        assert [e.loc.line for e in tool.events] == [42, 42]


class TestGuestContext:
    def test_nested_function_locations(self):
        locs = []

        def body(ctx):
            with ctx.function("outer", line=1):
                ctx.line(5)
                with ctx.function("inner", line=20):
                    ctx.line(22)
                    locs.append(ctx.current_location)
                locs.append(ctx.current_location)
        run(body)
        assert str(locs[0]).endswith(":22")
        assert str(locs[1]).endswith(":5")

    def test_line_outside_function_rejected(self):
        def body(ctx):
            ctx.line(3)
        with pytest.raises(MachineError):
            run(body)

    def test_stack_vars_freed_on_scope_exit(self):
        addrs = []

        def body(ctx):
            with ctx.function("main"):
                with ctx.function("f"):
                    addrs.append(ctx.stack_var("x", 8).addr)
                with ctx.function("g"):
                    addrs.append(ctx.stack_var("y", 8).addr)
        run(body)
        assert addrs[0] == addrs[1]              # frames alias

    def test_client_request_roundtrip(self):
        def body(ctx):
            ctx.machine.client_requests.subscribe("double", lambda p: p * 2)
            with ctx.function("main"):
                assert ctx.client_request("double", 21) == 42
        run(body)

    def test_compute_charges_time(self):
        def body(ctx):
            with ctx.function("main"):
                ctx.compute(10_000)
        machine = run(body)
        assert machine.cost.seconds > 0

    def test_extensions_slot(self):
        def body(ctx):
            ctx.extensions["custom"] = 123
            with ctx.function("main"):
                assert ctx.extensions["custom"] == 123
        run(body)


class TestLauncher:
    def test_unknown_command(self):
        from repro.__main__ import main
        assert main(["nonsense"]) == 2

    def test_help(self, capsys):
        from repro.__main__ import main
        assert main(["--help"]) == 0
        assert "table1" in capsys.readouterr().out

    def test_dispatch(self, capsys):
        from repro.__main__ import main
        rc = main(["errorreport"])
        assert rc == 0
        assert "Taskgrind report" in capsys.readouterr().out
