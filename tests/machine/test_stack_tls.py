"""Tests for thread stacks (frame aliasing) and ELF-TLS (TCB/DTV model)."""

import pytest

from repro.errors import MachineError
from repro.machine.memory import AddressSpace, Region, RegionKind
from repro.machine.stack import ThreadStack
from repro.machine.tls import TlsRegistry


def make_stack(tid=0):
    space = AddressSpace()
    region = space.map_region(Region(f"stack.t{tid}", 0x7F00_0000_0000,
                                     1 << 20, RegionKind.STACK,
                                     owner_thread=tid))
    return space, ThreadStack(space, region, tid)


class TestThreadStack:
    def test_frames_grow_downward(self):
        _, st = make_stack()
        st.push_frame("main")
        a = st.alloca(16)
        st.push_frame("callee")
        b = st.alloca(16)
        assert b < a

    def test_sequential_frames_alias(self):
        """Section IV-D: back-to-back frames at the same depth reuse addresses."""
        _, st = make_stack()
        outer = st.push_frame("parent")
        f1 = st.push_frame("task0")
        a = st.alloca(8, "x")
        st.pop_frame(f1)
        f2 = st.push_frame("task1")
        b = st.alloca(8, "x")
        st.pop_frame(f2)
        assert a == b
        st.pop_frame(outer)

    def test_pop_clears_scalars(self):
        space, st = make_stack()
        f = st.push_frame("fn")
        addr = st.alloca(8)
        space.store(addr, 8, 123)
        st.pop_frame(f)
        st.push_frame("fn2")
        addr2 = st.alloca(8)
        assert addr2 == addr
        assert space.load(addr2, 8) == 0     # zeroed, but same address

    def test_unbalanced_pop_rejected(self):
        _, st = make_stack()
        f1 = st.push_frame("a")
        st.push_frame("b")
        with pytest.raises(MachineError):
            st.pop_frame(f1)

    def test_alloca_without_frame_rejected(self):
        _, st = make_stack()
        with pytest.raises(MachineError):
            st.alloca(8)

    def test_frame_covering(self):
        _, st = make_stack()
        f1 = st.push_frame("outer")
        a = st.alloca(32)
        f2 = st.push_frame("inner")
        b = st.alloca(32)
        assert st.frame_covering(a) is f1
        assert st.frame_covering(b) is f2
        assert st.frame_covering(0x1000) is None

    def test_stack_overflow_detected(self):
        space = AddressSpace()
        region = space.map_region(Region("tiny", 0x1000, 64, RegionKind.STACK))
        st = ThreadStack(space, region, 0)
        st.push_frame("f")
        with pytest.raises(MachineError, match="overflow"):
            st.alloca(4096)

    def test_peak_bytes(self):
        _, st = make_stack()
        f = st.push_frame("fn")
        st.alloca(1024)
        st.pop_frame(f)
        assert st.peak_bytes >= 1024
        assert st.used_bytes == 0


class TestTls:
    def make(self, nthreads=2):
        space = AddressSpace()
        tls = TlsRegistry(space)
        for tid in range(nthreads):
            tls.register_thread(tid)
        return space, tls

    def test_same_var_same_thread_same_address(self):
        _, tls = self.make()
        tls.declare_static_var("x", 8)
        assert tls.resolve("x", 0) == tls.resolve("x", 0)

    def test_same_var_different_threads_disjoint(self):
        _, tls = self.make()
        tls.declare_static_var("x", 8)
        a0 = tls.resolve("x", 0)
        a1 = tls.resolve("x", 1)
        assert a0 != a1
        # and they live in regions owned by the right thread
        sp = tls.space
        assert sp.region_at(a0).owner_thread == 0
        assert sp.region_at(a1).owner_thread == 1

    def test_two_vars_disjoint_offsets(self):
        _, tls = self.make()
        tls.declare_static_var("x", 8)
        tls.declare_static_var("y", 8)
        assert tls.resolve("x", 0) != tls.resolve("y", 0)

    def test_snapshot_covers_static_block(self):
        _, tls = self.make()
        tls.declare_static_var("x", 8)
        snap = tls.snapshot(0)
        assert snap.covers(tls.resolve("x", 0), 8)
        assert not snap.covers(0xDEAD, 8)

    def test_snapshot_identity_same_thread(self):
        _, tls = self.make()
        s1 = tls.snapshot(0)
        s2 = tls.snapshot(0)
        assert s1 == s2
        assert s1 != tls.snapshot(1)

    def test_dynamic_module_bumps_generation(self):
        _, tls = self.make()
        g0 = tls.generation(0)
        mod = tls.open_module(0, 256)
        assert tls.generation(0) == g0 + 1
        base = tls.module_base(0, mod)
        assert tls.snapshot(0).covers(base, 256)
        tls.close_module(0, mod)
        assert tls.generation(0) == g0 + 2
        assert not tls.snapshot(0).covers(base, 256)

    def test_intra_segment_dtv_churn_invisible_in_snapshot(self):
        """The paper's stated limitation: alloc+free inside a segment leaves
        no trace in the end-of-segment snapshot."""
        _, tls = self.make()
        before = tls.snapshot(0)
        mod = tls.open_module(0, 128)
        base = tls.module_base(0, mod)
        tls.close_module(0, mod)
        after = tls.snapshot(0)
        assert not after.covers(base, 128)
        # only the generation betrays that something happened
        assert after.generation == before.generation + 2
