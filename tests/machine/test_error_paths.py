"""Error-path coverage: misuse must fail loudly, not corrupt state."""

import pytest

from repro.errors import MachineError, RuntimeModelError
from repro.machine.machine import Machine
from repro.machine.threads import Scheduler
from repro.openmp.api import make_env
from repro.vex.translate import Assembler


class TestSchedulerMisuse:
    def test_current_outside_sim_thread(self):
        sched = Scheduler()
        with pytest.raises(MachineError, match="not running"):
            sched.current()

    def test_maybe_current_outside_is_none(self):
        assert Scheduler().maybe_current() is None


class TestRuntimeMisuse:
    def test_unlock_by_non_owner(self):
        machine = Machine()
        env = make_env(machine, nthreads=2)

        def main():
            with env.ctx.function("main", line=1):
                def region(tid):
                    if env.thread_num() == 0:
                        env.rt.lock_acquire("L")
                        env.barrier()
                        env.rt.lock_release("L")
                    else:
                        env.barrier()
                        with pytest.raises(RuntimeModelError,
                                           match="non-owner"):
                            env.rt.lock_release("L")
                env.parallel(region, num_threads=2)
        # the nested pytest.raises runs on a sim thread; any escape would
        # surface here
        machine.run(main)

    def test_invalid_team_size(self):
        machine = Machine()
        env = make_env(machine, nthreads=2)

        def main():
            with env.ctx.function("main", line=1):
                with pytest.raises(RuntimeModelError, match="team size"):
                    env.parallel(lambda tid: None, num_threads=0)
        machine.run(main)

    def test_bad_depend_kind(self):
        machine = Machine()
        env = make_env(machine, nthreads=2)

        def main():
            with env.ctx.function("main", line=1):
                def make():
                    with pytest.raises(ValueError):
                        env.task(lambda tv: None,
                                 depend={"sideways": [0x1000]})
                env.parallel_single(make)
        machine.run(main)

    def test_private_on_included_task_rejected(self):
        machine = Machine()
        env = make_env(machine, nthreads=1)

        def main():
            with env.ctx.function("main", line=1):
                def make():
                    def body(tv):
                        with pytest.raises(RuntimeModelError,
                                           match="fast path"):
                            tv.private("k")
                    env.task(body, firstprivate={"k": 1})
                env.parallel_single(make)
        machine.run(main)


class TestAssemblerCorners:
    def test_negative_offset_memref(self):
        binary = Assembler().assemble("ld r0, [r1-8]\nhalt")
        instr = binary.at(binary.base)
        assert instr.args == (0, 1, -8)

    def test_bare_register_memref(self):
        binary = Assembler().assemble("st [r3], r4\nhalt")
        assert binary.at(binary.base).args == (3, 0, 4)

    def test_non_register_operand_rejected(self):
        with pytest.raises(MachineError, match="expected register"):
            Assembler().assemble("mov x0, r1")

    def test_hex_immediates(self):
        binary = Assembler().assemble("li r0, 0x40\nhalt")
        assert binary.at(binary.base).args == (0, 0x40)


class TestMachineSingleShot:
    def test_run_twice_rejected(self):
        machine = Machine()
        machine.run(lambda: None)
        with pytest.raises(MachineError, match="single-shot"):
            machine.run(lambda: None)
