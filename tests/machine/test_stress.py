"""Stress and robustness tests: scheduler scale, abort paths, error dumps."""

import pytest

from repro.errors import SimDeadlock
from repro.machine.machine import Machine
from repro.machine.threads import Scheduler, ThreadState
from repro.openmp.api import make_env
from repro.util.rng import RngHub


class TestSchedulerStress:
    def test_many_threads_many_yields(self):
        sched = Scheduler(RngHub(0))
        counter = {"n": 0}

        def body():
            for _ in range(20):
                counter["n"] += 1
                sched.yield_point()

        for _ in range(24):
            sched.spawn(body)
        sched.run()
        assert counter["n"] == 480

    def test_chained_spawns(self):
        """Each thread spawns the next, 50 deep."""
        sched = Scheduler(RngHub(0))
        seen = []

        def make(depth):
            def body():
                seen.append(depth)
                if depth < 50:
                    sched.spawn(make(depth + 1))
            return body

        sched.spawn(make(0))
        sched.run()
        assert sorted(seen) == list(range(51))

    def test_deadlock_dump_names_every_blocked_thread(self):
        sched = Scheduler(RngHub(0))
        for i in range(3):
            sched.spawn(lambda i=i: sched.block_until(
                lambda: False, f"reason-{i}"))
        with pytest.raises(SimDeadlock) as ei:
            sched.run()
        for i in range(3):
            assert f"reason-{i}" in str(ei.value)
        assert len(ei.value.states) == 3

    def test_exception_in_one_of_many(self):
        sched = Scheduler(RngHub(0))

        def spinner():
            while True:
                sched.yield_point()

        def boom():
            for _ in range(5):
                sched.yield_point()
            raise KeyError("needle")

        for _ in range(8):
            sched.spawn(spinner)
        sched.spawn(boom)
        with pytest.raises(KeyError, match="needle"):
            sched.run()
        assert all(t.state == ThreadState.DONE for t in sched.threads)

    def test_peak_live_tracking(self):
        sched = Scheduler(RngHub(0))

        def child():
            sched.yield_point()

        def parent():
            kids = [sched.spawn(child) for _ in range(5)]
            sched.block_until(
                lambda: all(k.state == ThreadState.DONE for k in kids),
                "join")

        sched.spawn(parent)
        sched.run()
        assert sched.peak_live == 6


class TestRuntimeStress:
    def test_large_task_fanout(self):
        done = []

        def body(env):
            def make():
                for i in range(200):
                    env.task(lambda tv, i=i: done.append(i))
                env.taskwait()
            env.parallel_single(make)

        machine = Machine(seed=0)
        env = make_env(machine, nthreads=4)

        def main():
            with env.ctx.function("main", line=1):
                body(env)
        machine.run(main)
        assert sorted(done) == list(range(200))

    def test_deep_task_nesting(self):
        depth_reached = []

        def body(env):
            def nested(tv, d):
                if d < 30:
                    env.task(lambda tv2: nested(tv2, d + 1))
                    env.taskwait()
                else:
                    depth_reached.append(d)

            env.parallel_single(
                lambda: (env.task(lambda tv: nested(tv, 0)),
                         env.taskwait()))

        machine = Machine(seed=0)
        env = make_env(machine, nthreads=4)

        def main():
            with env.ctx.function("main", line=1):
                body(env)
        machine.run(main)
        assert depth_reached == [30]

    def test_long_dependence_chain(self):
        order = []

        def body(env):
            tok = env.ctx.malloc(8)

            def make():
                for i in range(60):
                    env.task(lambda tv, i=i: order.append(i),
                             depend={"inout": [tok]})
                env.taskwait()
            env.parallel_single(make)

        machine = Machine(seed=3)
        env = make_env(machine, nthreads=4)

        def main():
            with env.ctx.function("main", line=1):
                body(env)
        machine.run(main)
        assert order == list(range(60))

    def test_guest_exception_through_task(self):
        def body(env):
            def make():
                env.task(lambda tv: (_ for _ in ()).throw(
                    ValueError("task bug")))
                env.taskwait()
            env.parallel_single(make)

        machine = Machine(seed=0)
        env = make_env(machine, nthreads=4)

        def main():
            with env.ctx.function("main", line=1):
                body(env)
        with pytest.raises(ValueError, match="task bug"):
            machine.run(main)
        # every simulated thread wound down cleanly
        assert all(t.state == ThreadState.DONE
                   for t in machine.scheduler.threads)

    def test_repeated_regions_many_barriers(self):
        hits = []

        def body(env):
            for r in range(6):
                def region(tid, r=r):
                    hits.append((r, env.thread_num()))
                    env.barrier()
                    env.barrier()
                env.parallel(region, num_threads=3)

        machine = Machine(seed=0)
        env = make_env(machine, nthreads=3)

        def main():
            with env.ctx.function("main", line=1):
                body(env)
        machine.run(main)
        assert len(hits) == 18
