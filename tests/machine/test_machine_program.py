"""Integration tests: Machine + GuestContext + instrumentation funnel."""

import pytest

from repro.errors import SegmentationFault
from repro.machine.machine import Machine
from repro.machine.program import GuestContext
from repro.vex.tool import Tool


class RecordingTool(Tool):
    """Captures every event for assertions."""

    name = "recorder"

    def __init__(self, dbi=True):
        super().__init__()
        self.is_dbi = dbi
        self.accesses = []
        self.allocs = []
        self.frees = []
        self.threads = []

    def on_access(self, e):
        self.accesses.append(e)

    def on_alloc(self, e):
        self.allocs.append(e)

    def on_free(self, e):
        self.frees.append(e)

    def on_thread_start(self, tid):
        self.threads.append(tid)


def run_program(body, tool=None, seed=0):
    m = Machine(seed=seed)
    if tool is not None:
        m.add_tool(tool)
    ctx = GuestContext(m, source_file="main.c")
    m.run(lambda: body(ctx))
    return m


def test_basic_heap_access_events():
    tool = RecordingTool()

    def body(ctx):
        with ctx.function("main", line=1):
            x = ctx.malloc(8, line=3)
            x.write(0, 42, line=5)
            assert x.read(0, line=6) == 42

    run_program(body, tool)
    assert len(tool.accesses) == 2
    w, r = tool.accesses
    assert w.is_write and not r.is_write
    assert w.addr == r.addr
    assert w.loc.line == 5 and r.loc.line == 6
    assert w.symbol.name == "main"


def test_alloc_event_has_stack_trace():
    tool = RecordingTool()

    def body(ctx):
        with ctx.function("main", line=1):
            ctx.line(10)
            with ctx.function("helper", line=20):
                ctx.malloc(16, line=22)

    run_program(body, tool)
    (alloc,) = tool.allocs
    assert alloc.site.line == 22
    names = [loc.function for loc in alloc.stack]
    assert names == ["main", "helper"]
    assert [loc.line for loc in alloc.stack] == [10, 22]


def test_free_event_and_recycling_visible():
    tool = RecordingTool()

    def body(ctx):
        with ctx.function("main"):
            a = ctx.malloc(8)
            ctx.free(a)
            b = ctx.malloc(8)
            assert b.addr == a.addr     # recycling in full effect

    run_program(body, tool)
    assert len(tool.frees) == 1 and not tool.frees[0].retained


def test_compile_time_tool_misses_uninstrumented_symbols():
    """The core DBI-vs-compile-time mechanism."""
    dbi = RecordingTool(dbi=True)
    ct = RecordingTool(dbi=False)
    ct.name = "compile-time"

    def body(ctx):
        with ctx.function("main", line=1):
            x = ctx.malloc(8)
            x.write(0)
            with ctx.function("__kmp_internal", instrumented=False,
                              library="libomp.so"):
                x.write(0)     # runtime-internal access

    m = Machine()
    m.add_tool(dbi)
    m.add_tool(ct)
    ctx = GuestContext(m)
    m.run(lambda: body(ctx))
    assert len(dbi.accesses) == 2
    assert len(ct.accesses) == 1
    assert ct.accesses[0].symbol.name == "main"


def test_stack_vars_alias_across_sequential_calls():
    addrs = []

    def body(ctx):
        with ctx.function("main"):
            for _ in range(2):
                with ctx.function("task_body"):
                    v = ctx.stack_var("x", 8)
                    v.write(0)
                    addrs.append(v.addr)

    run_program(body, RecordingTool())
    assert addrs[0] == addrs[1]


def test_tls_vars_per_thread():
    addrs = {}

    def body(ctx):
        m = ctx.machine

        def worker():
            mctx = m.context()
            with ctx.function("worker"):
                v = ctx.tls_var("counter", 8)
                addrs[mctx.thread_id] = v.addr
                v.write(0)

        t1 = m.new_thread(worker, "w1")
        t2 = m.new_thread(worker, "w2")
        from repro.machine.threads import ThreadState
        m.scheduler.block_until(
            lambda: t1.state == ThreadState.DONE and t2.state == ThreadState.DONE,
            "join workers")

    run_program(body, RecordingTool())
    vals = list(addrs.values())
    assert len(vals) == 2 and vals[0] != vals[1]


def test_segfault_on_wild_access():
    def body(ctx):
        with ctx.function("main"):
            ctx.write_mem(0x10, 4)    # below every mapped region

    with pytest.raises(SegmentationFault):
        run_program(body)


def test_use_after_free_hits_recycled_region_without_fault():
    """Freed heap stays mapped (region-level), like a real process page."""
    def body(ctx):
        with ctx.function("main"):
            a = ctx.malloc(8)
            ctx.free(a)
            a.write(0)     # UB in C; no segfault at region granularity

    run_program(body)   # must not raise


def test_global_vars_stable_addresses():
    seen = []

    def body(ctx):
        with ctx.function("main"):
            g1 = ctx.global_var("counter", 8)
            g2 = ctx.global_var("counter", 8)
            seen.append((g1.addr, g2.addr))
            g1.write(0, 7)
            assert g2.read(0) == 7

    run_program(body)
    a, b = seen[0]
    assert a == b


def test_cost_model_charges_accesses():
    def body(ctx):
        with ctx.function("main"):
            x = ctx.malloc(800, elem=8)
            x.write_range(0, 100)

    m = run_program(body)
    assert m.cost.counters["accesses"] == 1
    assert m.cost.counters["access_bytes"] == 800
    assert m.cost.seconds > 0


def test_memory_meter_accounts_everything():
    def body(ctx):
        with ctx.function("main"):
            ctx.malloc(1 << 16)
            ctx.global_var("g", 256)

    m = run_program(body)
    meter = m.memory_meter()
    assert meter.heap_high_water >= 1 << 16
    assert meter.globals_bytes >= 256
    assert meter.tls_bytes > 0        # thread 0's TCB + static block
    assert meter.total_bytes == meter.app_bytes  # no tool memory


def test_thread_start_callback_fires():
    tool = RecordingTool()

    def body(ctx):
        pass

    run_program(body, tool)
    assert tool.threads == [0]
