"""Tests for the deterministic token-passing scheduler."""

import pytest

from repro.errors import SimDeadlock
from repro.machine.threads import Scheduler, ThreadState
from repro.util.rng import RngHub


def test_single_thread_runs_to_completion():
    sched = Scheduler()
    out = []
    sched.spawn(lambda: out.append("ran"))
    sched.run()
    assert out == ["ran"]


def test_thread_result_captured():
    sched = Scheduler()
    t = sched.spawn(lambda: 42)
    sched.run()
    assert t.result == 42
    assert t.state == ThreadState.DONE


def test_two_threads_interleave_at_yields():
    sched = Scheduler()
    trace = []

    def worker(tag):
        def body():
            for i in range(3):
                trace.append((tag, i))
                sched.current().vtime += 1     # each slice costs 1 op
                sched.yield_point()
        return body

    sched.spawn(worker("a"))
    sched.spawn(worker("b"))
    sched.run()
    assert sorted(trace) == [(t, i) for t in "ab" for i in range(3)]
    # min-vtime scheduling keeps the threads within one slice of each other,
    # so neither thread finishes before the other has started
    first_done = min(trace.index(("a", 2)), trace.index(("b", 2)))
    assert {e[0] for e in trace[:first_done]} == {"a", "b"}


def test_determinism_same_seed_same_trace():
    def run(seed):
        sched = Scheduler(RngHub(seed))
        trace = []

        def worker(tag):
            def body():
                for i in range(5):
                    trace.append(tag)
                    sched.yield_point()
            return body

        for tag in "abcd":
            sched.spawn(worker(tag))
        sched.run()
        return trace

    assert run(7) == run(7)
    assert run(7) == run(7)


def test_block_until_releases_when_predicate_true():
    sched = Scheduler()
    state = {"flag": False}
    order = []

    def waiter():
        sched.block_until(lambda: state["flag"], "waiting for flag")
        order.append("waiter")

    def setter():
        sched.yield_point()
        state["flag"] = True
        order.append("setter")

    sched.spawn(waiter)
    sched.spawn(setter)
    sched.run()
    assert order == ["setter", "waiter"]


def test_block_until_already_true_is_noop():
    sched = Scheduler()
    out = []
    def body():
        sched.block_until(lambda: True, "never blocks")
        out.append("done")
    sched.spawn(body)
    sched.run()
    assert out == ["done"]


def test_deadlock_detected():
    sched = Scheduler()
    sched.spawn(lambda: sched.block_until(lambda: False, "waiting for godot"))
    with pytest.raises(SimDeadlock) as ei:
        sched.run()
    assert "godot" in str(ei.value)


def test_deadlock_circular_wait_two_threads():
    sched = Scheduler()
    state = {"a": False, "b": False}

    def t1():
        sched.block_until(lambda: state["b"], "a waits b")
        state["a"] = True

    def t2():
        sched.block_until(lambda: state["a"], "b waits a")
        state["b"] = True

    sched.spawn(t1)
    sched.spawn(t2)
    with pytest.raises(SimDeadlock) as ei:
        sched.run()
    assert len(ei.value.states) == 2


def test_guest_exception_propagates():
    sched = Scheduler()

    def boom():
        raise ValueError("guest bug")

    sched.spawn(boom)
    with pytest.raises(ValueError, match="guest bug"):
        sched.run()


def test_guest_exception_aborts_other_threads():
    sched = Scheduler()
    progress = []

    def spinner():
        while True:
            progress.append(1)
            sched.yield_point()

    def boom():
        sched.yield_point()
        raise RuntimeError("die")

    sched.spawn(spinner)
    sched.spawn(boom)
    with pytest.raises(RuntimeError, match="die"):
        sched.run()
    # spinner must have been unwound, not left hanging
    assert all(t.state == ThreadState.DONE for t in sched.threads)


def test_spawn_from_running_thread():
    sched = Scheduler()
    out = []

    def parent():
        child = sched.spawn(lambda: out.append("child"))
        sched.block_until(lambda: child.state == ThreadState.DONE, "join child")
        out.append("parent")

    sched.spawn(parent)
    sched.run()
    assert out == ["child", "parent"]


def test_min_vtime_policy_prefers_lagging_thread():
    sched = Scheduler()
    trace = []

    def fast():
        for _ in range(3):
            trace.append("fast")
            sched.current().vtime += 100
            sched.yield_point()

    def slow():
        for _ in range(3):
            trace.append("slow")
            sched.current().vtime += 1
            sched.yield_point()

    sched.spawn(fast)
    sched.spawn(slow)
    sched.run()
    # after the first round, 'slow' (cheap) should run ahead of 'fast'
    assert trace.count("slow") == 3
    assert trace.index("slow", 1) < trace.index("fast", 1)


def test_run_is_single_shot():
    sched = Scheduler()
    sched.spawn(lambda: None)
    sched.run()
    from repro.errors import MachineError
    with pytest.raises(MachineError):
        sched.run()


def test_many_threads_scale():
    sched = Scheduler()
    counter = {"n": 0}

    def body():
        counter["n"] += 1
        sched.yield_point()
        counter["n"] += 1

    for _ in range(32):
        sched.spawn(body)
    sched.run()
    assert counter["n"] == 64
