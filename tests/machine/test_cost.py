"""Tests for the cost model: clocks, tool factors, memory meters."""

import pytest

from repro.machine.cost import (Clock, CostModel, CostParams, MemoryMeter,
                                PROCESS_IMAGE_BYTES, ToolCost, OPS_PER_SECOND)


class FakeThread:
    def __init__(self, tid):
        self.id = tid
        self.vtime = 0.0


class TestClock:
    def test_parallel_clock_takes_max(self):
        clock = Clock(serialize=False)
        a, b = FakeThread(0), FakeThread(1)
        clock.charge(a, 100)
        clock.charge(b, 300)
        clock.charge(a, 50)
        assert clock.makespan_ops == 300
        assert a.vtime == 150

    def test_serialized_clock_sums(self):
        """The Valgrind big lock: everything lands on one global clock."""
        clock = Clock(serialize=True)
        a, b = FakeThread(0), FakeThread(1)
        clock.charge(a, 100)
        clock.charge(b, 300)
        assert clock.makespan_ops == 400
        assert b.vtime == 400

    def test_charge_without_thread(self):
        clock = Clock(serialize=False)
        clock.charge(None, 500)
        assert clock.makespan_ops == 500

    def test_seconds_conversion(self):
        clock = Clock()
        clock.charge(None, OPS_PER_SECOND)
        assert clock.seconds == pytest.approx(1.0)


class TestCostModel:
    def test_access_counters(self):
        cm = CostModel()
        t = FakeThread(0)
        cm.charge_access(t, 64, observed=False)
        assert cm.counters["accesses"] == 1
        assert cm.counters["access_bytes"] == 64

    def test_access_factor_only_when_observed(self):
        cm = CostModel(tool_cost=ToolCost(access_factor=10.0))
        a, b = FakeThread(0), FakeThread(1)
        cm.charge_access(a, 64, observed=True)
        cm.charge_access(b, 64, observed=False)
        assert a.vtime == pytest.approx(10 * b.vtime)

    def test_compute_factor(self):
        cm = CostModel(tool_cost=ToolCost(compute_factor=30.0))
        t = FakeThread(0)
        cm.charge_compute(t, 100)
        assert t.vtime == pytest.approx(3000)

    def test_translation_charged_once_per_symbol(self):
        cm = CostModel(tool_cost=ToolCost(translation_ops=1000.0))
        t = FakeThread(0)
        cm.charge_translation(t, "main")
        cm.charge_translation(t, "main")
        cm.charge_translation(t, "helper")
        assert t.vtime == pytest.approx(2000)

    def test_translation_noop_without_dbi_cost(self):
        cm = CostModel()
        t = FakeThread(0)
        cm.charge_translation(t, "main")
        assert t.vtime == 0

    def test_access_ops_rounds_up_elements(self):
        p = CostParams()
        assert p.access_ops(1) == p.access_per_element
        assert p.access_ops(8) == p.access_per_element
        assert p.access_ops(9) == 2 * p.access_per_element


class TestMemoryMeter:
    def test_app_bytes_includes_image(self):
        m = MemoryMeter(heap_high_water=1000, stack_bytes=100,
                        globals_bytes=10, tls_bytes=1, thread_bytes=5)
        assert m.app_bytes == PROCESS_IMAGE_BYTES + 1116

    def test_total_and_mib(self):
        m = MemoryMeter(tool_bytes=1 << 20)
        assert m.total_bytes == m.app_bytes + (1 << 20)
        assert m.total_mib == pytest.approx(m.total_bytes / (1 << 20))
