"""Tests for the address space and the recycling allocator."""

import pytest

from repro.errors import DoubleFree, OutOfMemory, SegmentationFault
from repro.machine.allocator import Allocator, FastArena
from repro.machine.memory import AddressSpace, Region, RegionKind, HEAP_BASE
from repro.vex.replacement import ReplacementRegistry


def make_heap(size=1 << 20):
    space = AddressSpace()
    region = space.map_region(Region("heap", HEAP_BASE, size, RegionKind.HEAP))
    return space, Allocator(space, region)


class TestAddressSpace:
    def test_region_lookup(self):
        space = AddressSpace()
        r = space.map_region(Region("g", 0x1000, 0x100, RegionKind.GLOBALS))
        assert space.region_at(0x1000) is r
        assert space.region_at(0x10FF) is r
        assert space.region_at(0x1100) is None
        assert space.region_at(0xFFF) is None

    def test_overlapping_map_rejected(self):
        space = AddressSpace()
        space.map_region(Region("a", 0x1000, 0x100, RegionKind.GLOBALS))
        with pytest.raises(ValueError):
            space.map_region(Region("b", 0x1080, 0x100, RegionKind.GLOBALS))

    def test_segfault_on_unmapped(self):
        space = AddressSpace()
        with pytest.raises(SegmentationFault):
            space.check_mapped(0xDEAD, 4, "read")

    def test_segfault_on_partial_overlap(self):
        space = AddressSpace()
        space.map_region(Region("a", 0x1000, 0x10, RegionKind.GLOBALS))
        with pytest.raises(SegmentationFault):
            space.check_mapped(0x100C, 8, "write")   # runs off the end

    def test_scalar_store_load(self):
        space = AddressSpace()
        space.map_region(Region("g", 0x1000, 0x100, RegionKind.GLOBALS))
        space.store(0x1010, 4, 42)
        assert space.load(0x1010, 4) == 42
        assert space.load(0x1020, 4) == 0   # never written -> default

    def test_unmap_clears_values(self):
        space = AddressSpace()
        r = space.map_region(Region("g", 0x1000, 0x100, RegionKind.GLOBALS))
        space.store(0x1010, 4, 7)
        space.unmap_region(r)
        assert space.region_at(0x1010) is None

    def test_describe(self):
        space = AddressSpace()
        space.map_region(Region("heap", 0x1000, 0x100, RegionKind.HEAP))
        assert "heap" in space.describe(0x1004)
        assert "unmapped" in space.describe(0x9999)


class TestAllocator:
    def test_malloc_returns_aligned_disjoint_blocks(self):
        _, alloc = make_heap()
        a = alloc.malloc(10)
        b = alloc.malloc(10)
        assert a.addr % 16 == 0 and b.addr % 16 == 0
        assert a.end <= b.addr or b.end <= a.addr

    def test_recycling_reuses_address(self):
        """The Section IV-B mechanism: free then malloc aliases."""
        _, alloc = make_heap()
        a = alloc.malloc(32)
        addr = a.addr
        alloc.free(addr)
        b = alloc.malloc(32)
        assert b.addr == addr
        assert alloc.recycled_allocs == 1

    def test_first_fit_split(self):
        _, alloc = make_heap()
        a = alloc.malloc(64)
        alloc.free(a.addr)
        b = alloc.malloc(16)
        c = alloc.malloc(16)
        assert b.addr == a.addr
        assert c.addr == a.addr + 16   # carved out of the same hole

    def test_free_coalesces_neighbours(self):
        _, alloc = make_heap()
        blocks = [alloc.malloc(16) for _ in range(3)]
        for b in blocks:
            alloc.free(b.addr)
        big = alloc.malloc(48)
        assert big.addr == blocks[0].addr

    def test_double_free_detected(self):
        _, alloc = make_heap()
        a = alloc.malloc(8)
        alloc.free(a.addr)
        with pytest.raises(DoubleFree):
            alloc.free(a.addr)

    def test_out_of_memory(self):
        _, alloc = make_heap(size=256)
        with pytest.raises(OutOfMemory):
            alloc.malloc(512)

    def test_free_as_noop_replacement_defeats_recycling(self):
        """Taskgrind's workaround: with free replaced, addresses never alias."""
        _, alloc = make_heap()
        reg = ReplacementRegistry()
        reg.replace("free")
        alloc.replacements = reg
        a = alloc.malloc(32)
        alloc.free(a.addr)
        b = alloc.malloc(32)
        assert b.addr != a.addr
        assert alloc.retained_bytes == 32
        # the retained block still counts toward the footprint (6x memory!)
        assert alloc.footprint == 64

    def test_block_at_finds_live_and_retained(self):
        _, alloc = make_heap()
        reg = ReplacementRegistry()
        alloc.replacements = reg
        a = alloc.malloc(32)
        assert alloc.block_at(a.addr + 5) is a
        reg.replace("free")
        alloc.free(a.addr)
        assert alloc.block_at(a.addr + 5).retained

    def test_high_water_tracks_peak(self):
        _, alloc = make_heap()
        a = alloc.malloc(100)
        b = alloc.malloc(100)
        alloc.free(a.addr)
        alloc.free(b.addr)
        assert alloc.high_water >= 208   # two aligned 100-byte blocks
        assert alloc.live_bytes == 0

    def test_history_at(self):
        _, alloc = make_heap()
        a = alloc.malloc(16)
        alloc.free(a.addr)
        b = alloc.malloc(16)
        hist = alloc.block_history_at(a.addr)
        assert [blk.seq for blk in hist] == [a.seq, b.seq]


class TestFastArena:
    def test_recycles_despite_free_replacement(self):
        """Models __kmp_fast_allocate: the paper's unsupported allocator."""
        _, alloc = make_heap()
        reg = ReplacementRegistry()
        reg.replace("free")          # Taskgrind is active...
        alloc.replacements = reg
        arena = FastArena(alloc, chunk=64)
        a = arena.alloc(48)
        arena.release(a)
        b = arena.alloc(48)
        assert a == b                # ...but the pool recycles anyway
        assert arena.recycled_allocs == 1

    def test_distinct_when_live(self):
        _, alloc = make_heap()
        arena = FastArena(alloc, chunk=64)
        a = arena.alloc(10)
        b = arena.alloc(10)
        assert a != b

    def test_oversized_request_rejected(self):
        _, alloc = make_heap()
        arena = FastArena(alloc, chunk=64)
        with pytest.raises(ValueError):
            arena.alloc(100)
