"""Tests for debug information: symbols, locations, stack rendering."""

import pytest

from repro.machine.debuginfo import DebugInfo, SourceLocation, format_stack


class TestSourceLocation:
    def test_str(self):
        assert str(SourceLocation("a.c", 12)) == "a.c:12"

    def test_equality_and_hash(self):
        a = SourceLocation("a.c", 1, "f")
        b = SourceLocation("a.c", 1, "f")
        assert a == b and hash(a) == hash(b)


class TestSymbolInterning:
    def test_first_declaration_wins(self):
        d = DebugInfo()
        s1 = d.intern("main", file="a.c", line=5)
        s2 = d.intern("main", file="other.c", line=99)
        assert s1 is s2
        assert s2.file == "a.c"

    def test_synthetic_code_addresses_distinct(self):
        d = DebugInfo()
        a = d.intern("f")
        b = d.intern("g")
        assert a.addr != b.addr

    def test_lookup(self):
        d = DebugInfo()
        d.intern("f")
        assert d.lookup("f") is not None
        assert d.lookup("missing") is None
        assert len(d.all_symbols()) == 1

    def test_location_helper(self):
        d = DebugInfo()
        sym = d.intern("f", file="x.c", line=10)
        assert str(sym.location()) == "x.c:10"
        assert str(sym.location(42)) == "x.c:42"


class TestPatternMatching:
    @pytest.mark.parametrize("name,patterns,expected", [
        ("__kmp_barrier", ("__kmp",), True),        # bare prefix
        ("__kmpc_fork", ("__kmp",), True),
        ("kmp_thing", ("__kmp",), False),
        ("main", ("*",), True),                     # explicit glob
        ("lulesh_main", ("lulesh_*",), True),
        ("anything", (), False),                    # empty list
        ("a.b", ("a?b",), True),
        ("memcpy", ("__kmp", "_dl_"), False),       # the paper's gap
    ])
    def test_matches_any(self, name, patterns, expected):
        assert DebugInfo.matches_any(name, patterns) is expected


class TestStackRendering:
    def test_innermost_first(self):
        stack = (SourceLocation("a.c", 1, "main"),
                 SourceLocation("a.c", 7, "helper"))
        text = format_stack(stack)
        lines = text.splitlines()
        assert lines[0].strip().startswith("at a.c:7")
        assert lines[1].strip().startswith("by a.c:1")

    def test_empty_stack(self):
        assert "no stack" in format_stack(())
