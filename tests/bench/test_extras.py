"""Tests for the extended (beyond-Table-I) microbenchmark suite."""

import pytest

from repro.baselines.common import Verdict
from repro.bench import extras
from repro.bench.runner import run_benchmark


class TestExtrasSuite:
    def test_registry(self):
        programs = extras.all_programs()
        assert len(programs) == 15
        assert len({p.name for p in programs}) == 15

    def test_all_rows_match_expected(self):
        rows, matches = extras.run_extras()
        assert matches == len(rows)

    @pytest.mark.parametrize("name", [p.name for p in extras.all_programs()])
    def test_row(self, name):
        program = extras.by_name(name)
        result = run_benchmark(program, "taskgrind", nthreads=4, seed=2)
        assert result.cell() == program.expected["taskgrind"], \
            program.description


class TestCrossToolContrasts:
    def test_archer_silent_on_critical(self):
        """x006: Archer models mutexes (TN) where Taskgrind reports (FP) —
        the support matrix the paper states in Section VI.b."""
        program = extras.by_name("x006-critical-is-not-ordering")
        archer = run_benchmark(program, "archer", nthreads=4, seed=2)
        assert archer.verdict == Verdict.TN
        tg = run_benchmark(program, "taskgrind", nthreads=4, seed=2)
        assert tg.verdict == Verdict.FP

    def test_detach_contrast_with_tasksanitizer(self):
        """x001: TaskSanitizer lacks detach support; the detach-carried
        ordering is invisible, so it reports the dependent reader."""
        program = extras.by_name("x001-detach-fulfilled-orders")
        tsan = run_benchmark(program, "tasksanitizer", nthreads=4, seed=2)
        assert tsan.verdict == Verdict.FP
        tg = run_benchmark(program, "taskgrind", nthreads=4, seed=2)
        assert tg.verdict == Verdict.TN

    def test_nested_race_found_by_segment_tools(self):
        program = extras.by_name("x009-nested-parallel-shared-race")
        for tool in ("taskgrind", "romp"):
            result = run_benchmark(program, tool, nthreads=2, seed=2)
            assert result.verdict == Verdict.TP, tool
