"""Row-by-row regression net for Table I.

Every (program, tool, thread-count) cell that is deterministic in our
simulation (everything except Archer's schedule-sensitive cells) is pinned
to the paper's value, so a regression in any mechanism fails with the exact
benchmark and tool named.
"""

import pytest

from repro.bench import drb, tmb
from repro.bench.runner import run_benchmark

SEED = 2
DETERMINISTIC_TOOLS = ("tasksanitizer", "romp", "taskgrind")

DRB_CASES = [(p.name, tool) for p in drb.all_programs()
             for tool in DETERMINISTIC_TOOLS]
TMB_CASES = [(p.name, tool, nthreads)
             for p in tmb.all_programs()
             for tool in DETERMINISTIC_TOOLS
             for nthreads in (1, 4)]


@pytest.mark.parametrize("name,tool", DRB_CASES)
def test_drb_cell(name, tool):
    program = drb.by_name(name)
    expected = program.expected[tool]
    result = run_benchmark(program, tool, nthreads=4, seed=SEED)
    assert result.cell() in expected.split("/"), \
        f"{name} under {tool}: measured {result.cell()}, paper {expected}"


@pytest.mark.parametrize("name,tool,nthreads", TMB_CASES)
def test_tmb_cell(name, tool, nthreads):
    program = tmb.by_name(name)
    expected = program.expected["1t" if nthreads == 1 else "4t"][tool]
    result = run_benchmark(program, tool, nthreads=nthreads, seed=SEED)
    assert result.cell() in expected.split("/"), \
        f"{name} under {tool} @ {nthreads}T: measured {result.cell()}, " \
        f"paper {expected}"


class TestArcherDeterministicSubset:
    """The Archer cells that are *not* schedule-sensitive in our model."""

    STABLE = {
        # name -> expected (paper)
        "072-taskdep1-orig": "TN",
        "100-task-reference-orig": "FP",
        "101-task-value-orig": "FP",
        "106-taskwaitmissing-orig": "TP",
        "107-taskgroup-orig": "TN",
        "122-taskundeferred-orig": "TN",
        "123-taskundeferred-orig": "TP",
        "129-mergeable-taskwait-orig": "FN",
        "135-taskdep-mutexinoutset-orig": "TN",
        "136-taskdep-mutexinoutset-orig": "TP",
    }

    @pytest.mark.parametrize("name", sorted(STABLE))
    def test_archer_cell(self, name):
        program = drb.by_name(name)
        result = run_benchmark(program, "archer", nthreads=4, seed=SEED)
        assert result.cell() == self.STABLE[name]

    @pytest.mark.parametrize("name,expected", [
        ("1001-stack.1", "FN"), ("1004-stack.4", "FN"),
        ("1000-memory-recycling.1", "TN"), ("1006-tls.1", "TN"),
    ])
    def test_archer_single_thread_tmb(self, name, expected):
        """Single-thread Archer verdicts are deterministic (everything is
        thread-ordered): the paper's FN column."""
        program = tmb.by_name(name)
        result = run_benchmark(program, "archer", nthreads=1, seed=SEED)
        assert result.cell() == expected
