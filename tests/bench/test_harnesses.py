"""Tests for the bench harness modules themselves (table1/table2/fig4/CSV)."""


from repro.bench.fig4 import measure, run_fig4, to_csv
from repro.bench.table1 import Table1Row, render
from repro.bench.table2 import Cell, run_cell


class TestFig4Harness:
    def test_measure_reference_point(self):
        p = measure("none", 4, 4)
        assert p.time_s > 0 and p.mem_mib > 0 and not p.crashed

    def test_sweep_structure(self):
        points = run_fig4(sizes=(4,))
        assert {(p.tool, p.nthreads) for p in points} == {
            ("none", 4), ("archer", 4), ("taskgrind", 1)}

    def test_csv_format(self):
        points = run_fig4(sizes=(4,))
        csv = to_csv(points)
        lines = csv.splitlines()
        assert lines[0] == "tool,threads,s,time_s,mem_mib,crashed"
        assert len(lines) == 4
        for line in lines[1:]:
            assert len(line.split(",")) == 6

    def test_taskgrind_measured_single_threaded(self):
        p = measure("taskgrind", 4, 1)
        assert not p.crashed              # 1 thread: no lock-up


class TestTable2Harness:
    def test_cell_formatting(self):
        c = Cell(time_s=1.234, mem_mib=63.7, reports="5")
        assert c.fmt_time() == "1.23"
        assert c.fmt_mem() == "64"
        assert c.fmt_reports() == "5"

    def test_deadlock_cell(self):
        c = Cell(deadlock=True)
        assert c.fmt_time() == c.fmt_mem() == c.fmt_reports() == "deadlock"

    def test_run_cell_reference(self):
        c = run_cell("none", racy=False, nthreads=1, s=4)
        assert not c.deadlock and c.reports == "0"


class TestTable1Harness:
    def test_row_matching_logic(self):
        row = Table1Row(program="p", block="drb", racy=True,
                        measured={"archer": "TP"},
                        expected={"archer": "FN/TP"})
        assert row.matches("archer") is True
        row.expected["archer"] = "FN"
        assert row.matches("archer") is False
        assert row.matches("romp") is None

    def test_render_marks_mismatches(self):
        rows = [Table1Row(program="p", block="drb", racy=False,
                          measured={t: "TN" for t in
                                    ("tasksanitizer", "archer", "romp",
                                     "taskgrind")},
                          expected={"tasksanitizer": "FP", "archer": "TN",
                                    "romp": "TN", "taskgrind": "TN"})]
        text = render(rows)
        assert "TN (FP) *" in text
        assert "TN (TN)" in text
