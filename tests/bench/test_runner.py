"""Tests for the benchmark runner and the verdict plumbing."""

import pytest

from repro.baselines.common import Verdict, classify
from repro.bench.programs import BenchProgram
from repro.bench.runner import TOOLS, run_benchmark


def prog(entry, racy=False, **kw):
    return BenchProgram(name="t", racy=racy, entry=entry, **kw)


def racy_entry(env):
    x = env.ctx.malloc(8)

    def make():
        env.task(lambda tv: x.write(0, line=8))
        env.task(lambda tv: x.write(0, line=11))
        env.taskwait()
    env.parallel_single(make)


def clean_entry(env):
    x = env.ctx.malloc(8)

    def make():
        env.task(lambda tv: x.write(0), depend={"out": [x]})
        env.task(lambda tv: x.write(0), depend={"inout": [x]})
        env.taskwait()
    env.parallel_single(make)


class TestClassify:
    @pytest.mark.parametrize("reported,racy,expected", [
        (True, True, Verdict.TP), (False, True, Verdict.FN),
        (True, False, Verdict.FP), (False, False, Verdict.TN),
    ])
    def test_matrix(self, reported, racy, expected):
        assert classify(reported, racy) == expected


class TestRunBenchmark:
    def test_taskgrind_tp(self):
        r = run_benchmark(prog(racy_entry, racy=True), "taskgrind")
        assert r.verdict == Verdict.TP
        assert r.report_count >= 1

    def test_taskgrind_tn(self):
        r = run_benchmark(prog(clean_entry, racy=False), "taskgrind")
        assert r.verdict == Verdict.TN

    def test_none_tool_never_reports(self):
        r = run_benchmark(prog(racy_entry, racy=True), "none")
        assert r.verdict == Verdict.FN       # no tool, racy -> nothing seen

    def test_ncs_classification(self):
        r = run_benchmark(prog(clean_entry, min_clang=11), "tasksanitizer")
        assert r.verdict == Verdict.NCS

    def test_segv_classification(self):
        r = run_benchmark(
            prog(clean_entry, features=frozenset({"romp-segv"})), "romp")
        assert r.verdict == Verdict.SEGV

    def test_results_carry_cost_and_memory(self):
        r = run_benchmark(prog(clean_entry), "taskgrind")
        assert r.sim_seconds > 0
        assert r.sim_memory_mib > 0

    def test_all_tools_run_all(self):
        for name in TOOLS:
            r = run_benchmark(prog(clean_entry), name, nthreads=2)
            assert r.verdict in (Verdict.TN, Verdict.FP), name

    def test_seed_changes_are_isolated(self):
        a = run_benchmark(prog(racy_entry, racy=True), "taskgrind", seed=0)
        b = run_benchmark(prog(racy_entry, racy=True), "taskgrind", seed=1)
        assert a.verdict == b.verdict == Verdict.TP   # logical analysis


class TestRegistries:
    def test_drb_registry_complete(self):
        from repro.bench import drb
        assert len(drb.all_programs()) == 29
        names = [p.name for p in drb.all_programs()]
        assert "027-taskdependmissing-orig" in names
        assert "175-non-sibling-taskdep2" in names
        assert len(set(names)) == 29

    def test_tmb_registry_complete(self):
        from repro.bench import tmb
        assert len(tmb.all_programs()) == 7

    def test_every_drb_program_has_expectations(self):
        from repro.bench import drb
        for p in drb.all_programs():
            assert set(p.expected) == {"tasksanitizer", "archer", "romp",
                                       "taskgrind"}, p.name

    def test_every_tmb_program_has_both_blocks(self):
        from repro.bench import tmb
        for p in tmb.all_programs():
            assert set(p.expected) == {"1t", "4t"}, p.name

    def test_ground_truth_distribution(self):
        """The DRB subset has both racy and race-free programs."""
        from repro.bench import drb
        racy = sum(p.racy for p in drb.all_programs())
        assert 10 <= racy <= 15


class TestTable1Harness:
    def test_subset_run(self):
        """Spot-check two known-stable rows through the full harness."""
        from repro.bench import drb
        from repro.bench.table1 import Table1Row, run_table1

        r072 = run_benchmark(drb.by_name("072-taskdep1-orig"), "taskgrind")
        assert r072.cell() == "TN"
        r027 = run_benchmark(drb.by_name("027-taskdependmissing-orig"),
                             "taskgrind")
        assert r027.cell() == "TP"

    def test_headline_metric(self):
        """Taskgrind's single FN is the mergeable row (DRB129)."""
        from repro.bench import drb
        fn_rows = []
        for p in drb.all_programs():
            r = run_benchmark(p, "taskgrind", seed=2)
            if r.cell() == "FN":
                fn_rows.append(p.name)
        assert fn_rows == ["129-mergeable-taskwait-orig"]
