"""Tests for the seed-stability study (schedule sensitivity)."""

import pytest

from repro.bench import tmb
from repro.bench.runner import run_benchmark
from repro.bench.stability import render, run_stability, unstable_cells


@pytest.fixture(scope="module")
def stability():
    # a focused subset keeps this quick: the full study is the CLI's job
    return run_stability(seeds=5)


class TestStability:
    def test_segment_tools_never_flip(self, stability):
        flips = unstable_cells(stability)
        assert all(tool == "archer" for _n, tool, _t, _v in flips), flips

    def test_archer_flips_somewhere(self):
        """Archer's verdict on a racy pair depends on the schedule: across
        enough seeds both FN and TP appear for at least one cell (the
        paper's own FN/TP notation)."""
        program = tmb.by_name("1001-stack.1")
        verdicts = {run_benchmark(program, "archer", nthreads=4,
                                  seed=s).cell() for s in range(24)}
        # 4 threads, 2 tiny tasks: mostly TP, occasionally same-thread FN —
        # the paper's own cell prints "FN/TP"
        assert verdicts == {"FN", "TP"}

    def test_render(self, stability):
        text = render(stability, seeds=5)
        assert "flipping cells per tool" in text
        assert "taskgrind: 0" in text
