"""Differential oracle + shrinker behaviour."""

from repro.fuzz.diff import run_differential
from repro.fuzz.executors import fuzz_options
from repro.fuzz.gen import generate
from repro.fuzz.shrink import (load_reproducer, reproducer_doc, shrink,
                               write_reproducer)
from repro.fuzz.spec import FuzzProgram, validate
from repro.fuzz.truth import ground_truth


class TestDifferentialClean:
    def test_seed_batch_has_zero_divergences(self):
        """The standing promise the fuzz-smoke CI job enforces."""
        for seed in range(1, 16):
            result = run_differential(generate(seed), schedules=2)
            assert result.ok, (f"seed {seed}: "
                               f"{[str(d) for d in result.divergences]}")

    def test_verdict_matches_truth_fields(self):
        result = run_differential(generate(5), schedules=2)
        assert result.truth == result.vclock
        for outcome in result.outcomes:
            assert outcome.slots == result.truth


class TestDifferentialDiverges:
    SCRATCH = FuzzProgram(
        family="deps", seed=-1, nthreads=4, slots=1,
        body=[{"ops": [["scratch"]], "in": [], "out": []},
              {"ops": [["scratch"]], "in": [], "out": []}])

    def test_broken_recycling_reports_suppression(self):
        result = run_differential(
            self.SCRATCH, schedules=6,
            taskgrind_options=fuzz_options(suppress_recycling=False))
        assert not result.ok
        assert "suppression" in result.kinds()

    def test_divergence_counter_increments(self):
        from repro.obs.metrics import get_registry
        reg = get_registry()
        before = reg.counter("fuzz.divergences").value
        run_differential(
            self.SCRATCH, schedules=6,
            taskgrind_options=fuzz_options(suppress_recycling=False))
        assert reg.counter("fuzz.divergences").value > before


class TestShrinker:
    def test_minimizes_to_the_racy_core(self):
        """A racy program buried in ordered chaff shrinks to ~2 accesses."""
        noisy = FuzzProgram(
            family="tasks", seed=-1, nthreads=2, slots=4,
            body=[["r", 1], ["tls", 0], ["task", [["w", 2], ["stack"]]],
                  ["wait"], ["r", 2],
                  ["task", [["w", 0], ["r", 3]]], ["w", 0],
                  ["scratch"], ["wait"]])
        assert ground_truth(noisy) == {"s0"}

        def still_racy(candidate):
            return "s0" in ground_truth(candidate)

        small, spent = shrink(noisy, still_racy)
        assert "s0" in ground_truth(small)
        assert validate(small) is None
        assert small.op_count() <= 3
        assert spent > 0

    def test_respects_budget(self):
        p = generate(5, ensure_race=True)
        _, spent = shrink(p, lambda c: bool(ground_truth(c)), budget=7)
        assert spent <= 7

    def test_feb_transfer_removed_as_pair(self):
        p = FuzzProgram(
            family="feb", seed=-1, nthreads=2, slots=1,
            body=[{"ops": [["w", 0], ["writeEF", 0]]},
                  {"ops": [["readFE", 0], ["w", 0]]}])
        assert not ground_truth(p)

        small, _ = shrink(p, lambda c: bool(ground_truth(c)))
        # dropping the transfer pair unlocks the race with both writes kept
        assert ground_truth(small)
        assert validate(small) is None


class TestReproducerIO:
    def test_roundtrip(self, tmp_path):
        p = generate(3)
        path = write_reproducer(p, str(tmp_path), kinds=["suppression"],
                                options={"suppress_recycling": False},
                                note="unit test")
        loaded, kinds, options, note = load_reproducer(path)
        assert loaded.to_json() == p.to_json()
        assert kinds == ["suppression"]
        assert options == {"suppress_recycling": False}
        assert note == "unit test"

    def test_doc_shape(self):
        doc = reproducer_doc(generate(4), kinds=[])
        assert doc["schema"] == "taskgrind-fuzz-repro/1"
        assert doc["expect"] == []
        assert doc["program"]["schema"] == "taskgrind-fuzz-program/1"


class TestCli:
    def test_clean_campaign_exits_zero(self, tmp_path, capsys):
        from repro.fuzz.cli import main
        rc = main(["--seeds", "4", "--schedules", "2",
                   "--corpus-dir", str(tmp_path),
                   "--json", str(tmp_path / "report.json")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0 divergent -> ok" in out
        assert (tmp_path / "report.json").exists()

    def test_break_suppression_exits_nonzero_with_reproducer(self, tmp_path):
        from repro.fuzz.cli import main
        # seed 27 is a deps program with two parallel scratch tasks
        rc = main(["--seeds", "8", "--base-seed", "24", "--schedules", "3",
                   "--break-suppression", "recycling",
                   "--corpus-dir", str(tmp_path)])
        assert rc == 1
        written = list(tmp_path.glob("*.json"))
        assert written, "expected a shrunk reproducer in the corpus dir"

    def test_unknown_family_rejected(self, capsys):
        from repro.fuzz.cli import main
        assert main(["--families", "nope"]) == 2

    def test_launcher_knows_fuzz(self):
        from repro.__main__ import COMMANDS
        assert COMMANDS["fuzz"] == "repro.fuzz.cli"
