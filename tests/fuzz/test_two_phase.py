"""The two-phase fuzz oracle: record-then-replay must equal single-pass."""

import pytest

from repro.fuzz.diff import DIVERGENCE_KINDS, run_two_phase_differential
from repro.fuzz.executors import run_taskgrind, run_taskgrind_two_phase
from repro.fuzz.gen import generate
from repro.fuzz.truth import ground_truth


class TestKinds:
    def test_new_divergence_kinds_registered(self):
        assert "replay-divergence" in DIVERGENCE_KINDS
        assert "two-phase-mismatch" in DIVERGENCE_KINDS


class TestExecutor:
    def test_clean_program_replays_clean(self):
        program = generate(2, family="deps")
        assert not ground_truth(program)
        outcome, divergence = run_taskgrind_two_phase(
            program, schedule_seed=2000)
        assert divergence == ""
        assert not outcome.crashed
        assert not outcome.slots

    def test_planted_race_survives_the_pipeline(self):
        # seed 3 deps plants races on s1/s2; the replayed verdict must
        # match both ground truth and the single-pass verdict exactly
        program = generate(3, family="deps")
        truth = ground_truth(program)
        assert truth
        single = run_taskgrind(program, schedule_seed=3000)
        two, divergence = run_taskgrind_two_phase(program,
                                                  schedule_seed=3000)
        assert divergence == ""
        assert two.slots == single.slots
        assert two.report_count == single.report_count
        assert truth <= two.slots

    def test_feb_family_uses_the_qthreads_executor(self):
        program = generate(1, family="feb")
        two, divergence = run_taskgrind_two_phase(program,
                                                  schedule_seed=1000)
        assert divergence == ""
        single = run_taskgrind(program, schedule_seed=1000)
        assert two.slots == single.slots


class TestDifferential:
    @pytest.mark.parametrize("seed,family", [(2, "deps"), (3, "deps"),
                                             (5, "sp"), (1, "feb")])
    def test_fixed_seeds_have_zero_divergences(self, seed, family):
        program = generate(seed, family=family)
        result = run_two_phase_differential(program, schedules=2)
        assert result.ok, [str(d) for d in result.divergences]
        assert len(result.outcomes) == 2

    def test_racy_program_verdict_comes_from_the_replay(self):
        program = generate(3, family="deps")
        result = run_two_phase_differential(program, schedules=2)
        assert result.ok, [str(d) for d in result.divergences]
        for outcome in result.outcomes:
            assert result.truth <= outcome.slots
