"""Corpus regression runner: replay every checked-in reproducer.

Each ``tests/fuzz/corpus/*.json`` is a ``taskgrind-fuzz-repro/1`` document
carrying a program, optional Taskgrind option overrides, and the expected
divergence-kind set.  An empty ``expect`` list pins a program that must run
*clean*; a non-empty one pins a known-divergent configuration (e.g. a
suppression class intentionally disabled) that must keep diverging the same
way.  The fuzz CLI appends new entries here whenever it shrinks a fresh
divergence, so this suite only ever grows.
"""

import glob
import os

import pytest

from repro.fuzz.diff import run_differential
from repro.fuzz.executors import fuzz_options
from repro.fuzz.shrink import load_reproducer
from repro.fuzz.spec import validate

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
ENTRIES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))

#: replaying under several schedules is the point — divergences that depend
#: on allocation order (recycling) need a few tries to manifest
SCHEDULES = 6


def test_corpus_is_not_empty():
    assert ENTRIES, f"no corpus entries under {CORPUS_DIR}"


@pytest.mark.parametrize("path", ENTRIES,
                         ids=[os.path.basename(p) for p in ENTRIES])
def test_reproducer(path):
    program, expect, options, note = load_reproducer(path)
    assert validate(program) is None, f"{path}: invalid program"
    result = run_differential(program, schedules=SCHEDULES,
                              taskgrind_options=fuzz_options(**options))
    if not expect:
        assert result.ok, (f"{path} regressed ({note}): "
                           f"{[str(d) for d in result.divergences]}")
    else:
        got = set(result.kinds())
        assert set(expect) <= got, (
            f"{path} no longer reproduces ({note}): expected {expect}, "
            f"got {sorted(got)}")
