"""Oracle self-checks: every detector finds the planted race on a
known-racy program and stays silent on a known-clean one."""

from repro.fuzz.executors import fuzz_options, run_taskgrind
from repro.fuzz.gen import generate
from repro.fuzz.oracles import spbags_verdict, vclock_slots
from repro.fuzz.spec import FuzzProgram
from repro.fuzz.truth import ground_truth

#: hand-built sp program with exactly one intended race on slot 0: the
#: parent writes concurrently with a deferred child writing the same slot
RACY_SP = FuzzProgram(
    family="sp", seed=-1, nthreads=2, slots=2,
    body=[["task", [["w", 0]]], ["w", 0], ["wait"], ["r", 1]])

#: same shape, but the parent only touches slot 1 — no race anywhere
CLEAN_SP = FuzzProgram(
    family="sp", seed=-1, nthreads=2, slots=2,
    body=[["task", [["w", 0]]], ["w", 1], ["wait"], ["r", 0]])

RACY_DEPS = FuzzProgram(
    family="deps", seed=-1, nthreads=2, slots=1,
    body=[{"ops": [["w", 0]], "in": [], "out": []},
          {"ops": [["w", 0]], "in": [], "out": []}])

CLEAN_DEPS = FuzzProgram(
    family="deps", seed=-1, nthreads=2, slots=1,
    body=[{"ops": [["w", 0]], "in": [], "out": [0]},
          {"ops": [["w", 0]], "in": [], "out": [0]}])

RACY_FEB = FuzzProgram(
    family="feb", seed=-1, nthreads=2, slots=1,
    body=[{"ops": [["w", 0]]}, {"ops": [["w", 0]]}])

CLEAN_FEB = FuzzProgram(
    family="feb", seed=-1, nthreads=2, slots=1,
    body=[{"ops": [["w", 0], ["writeEF", 0]]},
          {"ops": [["readFE", 0], ["w", 0]]}])

RACY_BARRIER = FuzzProgram(
    family="barrier", seed=-1, nthreads=2, slots=1,
    body=[[[["w", 0]]], [[["w", 0]]]])

CLEAN_BARRIER = FuzzProgram(
    family="barrier", seed=-1, nthreads=2, slots=1,
    body=[[[["w", 0]], []], [[], [["w", 0]]]])


class TestGroundTruth:
    def test_planted_race_found(self):
        assert ground_truth(RACY_SP) == {"s0"}
        assert ground_truth(RACY_DEPS) == {"s0"}
        assert ground_truth(RACY_FEB) == {"s0"}
        assert ground_truth(RACY_BARRIER) == {"s0"}

    def test_clean_programs_clean(self):
        assert not ground_truth(CLEAN_SP)
        assert not ground_truth(CLEAN_DEPS)
        assert not ground_truth(CLEAN_FEB)
        assert not ground_truth(CLEAN_BARRIER)


class TestVectorClockOracle:
    def test_planted_race_found(self):
        assert vclock_slots(RACY_SP) == {"s0"}
        assert vclock_slots(RACY_DEPS) == {"s0"}
        assert vclock_slots(RACY_FEB) == {"s0"}
        assert vclock_slots(RACY_BARRIER) == {"s0"}

    def test_clean_programs_clean(self):
        assert not vclock_slots(CLEAN_SP)
        assert not vclock_slots(CLEAN_DEPS)
        assert not vclock_slots(CLEAN_FEB)
        assert not vclock_slots(CLEAN_BARRIER)

    def test_agrees_with_truth_on_generated(self):
        for seed in range(1, 26):
            p = generate(seed)
            assert vclock_slots(p) == ground_truth(p), f"seed {seed}"


class TestSpBagsOracle:
    def test_planted_race_found(self):
        assert spbags_verdict(RACY_SP) is True

    def test_clean_program_clean(self):
        assert spbags_verdict(CLEAN_SP) is False

    def test_agrees_with_truth_on_generated(self):
        for seed in range(1, 16):
            p = generate(seed, family="sp")
            assert spbags_verdict(p) == bool(ground_truth(p)), f"seed {seed}"


class TestTaskgrindFindsPlantedRaces:
    def test_racy_programs(self):
        for p in (RACY_SP, RACY_DEPS, RACY_FEB, RACY_BARRIER):
            out = run_taskgrind(p, schedule_seed=1)
            assert out.ok, f"{p.family}: crashed {out.crashed}"
            assert out.slots == {"s0"}, f"{p.family}: {out.slots}"
            assert not out.noise

    def test_clean_programs(self):
        for p in (CLEAN_SP, CLEAN_DEPS, CLEAN_FEB, CLEAN_BARRIER):
            out = run_taskgrind(p, schedule_seed=1)
            assert out.ok
            assert not out.slots, f"{p.family}: {out.slots}"
            assert not out.noise


class TestSuppressionSurface:
    """Noise ops must stay silent by default and surface when a
    suppression class is intentionally broken (the harness self-test)."""

    SCRATCH = FuzzProgram(
        family="deps", seed=-1, nthreads=4, slots=1,
        body=[{"ops": [["scratch"]], "in": [], "out": []},
              {"ops": [["scratch"]], "in": [], "out": []}])

    def test_recycling_suppressed_by_default(self):
        out = run_taskgrind(self.SCRATCH, schedule_seed=3)
        assert out.ok and not out.slots and not out.noise

    def test_breaking_recycling_surfaces_noise(self):
        hits = 0
        for s in range(6):
            out = run_taskgrind(
                self.SCRATCH, schedule_seed=s,
                options=fuzz_options(suppress_recycling=False))
            assert out.ok
            assert not out.slots
            hits += bool(out.noise)
        # recycling collisions depend on allocation order; over several
        # schedules at least one must recycle the freed block
        assert hits > 0
