"""Generator determinism + validity (the seed-replay contract)."""

import pytest

from repro.fuzz.gen import generate
from repro.fuzz.spec import FAMILIES, FuzzProgram, validate
from repro.fuzz.truth import ground_truth

SEEDS = list(range(1, 31))


class TestDeterminism:
    def test_same_seed_byte_identical(self):
        for seed in SEEDS:
            a = generate(seed)
            b = generate(seed)
            assert a.to_json() == b.to_json(), f"seed {seed} not stable"

    def test_roundtrip_preserves_bytes(self):
        for seed in SEEDS:
            p = generate(seed)
            assert FuzzProgram.from_json(p.to_json()).to_json() == p.to_json()

    def test_same_seed_same_verdicts(self):
        """Same seed ⇒ same program ⇒ same ground truth, twice over."""
        for seed in SEEDS[:10]:
            assert ground_truth(generate(seed)) == \
                ground_truth(generate(seed))

    def test_digest_stable(self):
        for seed in SEEDS[:10]:
            assert generate(seed).digest() == generate(seed).digest()


class TestValidity:
    def test_generated_programs_validate(self):
        for seed in SEEDS:
            p = generate(seed)
            assert validate(p) is None, f"seed {seed}: {validate(p)}"

    def test_all_families_reachable(self):
        seen = {generate(seed).family for seed in range(1, 40)}
        assert seen == set(FAMILIES)

    def test_family_override(self):
        for fam in FAMILIES:
            p = generate(7, family=fam)
            assert p.family == fam
            assert validate(p) is None

    def test_sp_bodies_end_with_wait(self):
        from repro.fuzz.spec import iter_bodies
        for seed in SEEDS:
            p = generate(seed, family="sp")
            for body in iter_bodies(p.body):
                if any(op[0] == "task" for op in body):
                    assert body[-1][0] == "wait"


class TestEnsureRace:
    def test_ensure_race_true(self):
        for seed in SEEDS[:10]:
            p = generate(seed, ensure_race=True)
            assert ground_truth(p), f"seed {seed} produced race-free program"

    def test_ensure_race_false(self):
        for seed in SEEDS[:10]:
            p = generate(seed, ensure_race=False)
            assert not ground_truth(p)

    def test_ensure_race_deterministic(self):
        for seed in SEEDS[:5]:
            assert generate(seed, ensure_race=True).to_json() == \
                generate(seed, ensure_race=True).to_json()


class TestSpecValidation:
    def test_rejects_unknown_family(self):
        p = FuzzProgram(family="lol", seed=-1, nthreads=2, slots=1, body=[])
        assert validate(p) is not None

    def test_rejects_sp_without_trailing_wait(self):
        p = FuzzProgram(family="sp", seed=-1, nthreads=2, slots=1,
                        body=[["task", [["w", 0]]], ["w", 0]])
        assert "wait" in validate(p)

    def test_rejects_feb_consume_without_fill(self):
        p = FuzzProgram(family="feb", seed=-1, nthreads=2, slots=1,
                        body=[{"ops": [["readFE", 0]]}])
        assert "never filled" in validate(p)

    def test_rejects_slot_out_of_range(self):
        p = FuzzProgram(family="tasks", seed=-1, nthreads=2, slots=2,
                        body=[["w", 5]])
        assert "out of range" in validate(p)

    def test_rejects_ragged_barrier(self):
        p = FuzzProgram(family="barrier", seed=-1, nthreads=2, slots=1,
                        body=[[[["w", 0]]], [[["w", 0]], [["r", 0]]]])
        assert validate(p) is not None

    def test_from_json_rejects_wrong_schema(self):
        with pytest.raises(ValueError):
            FuzzProgram.from_json('{"schema": "nope/1"}')
