"""Fault-injection campaign mode: salvage must never invent evidence."""

from repro.faults.plan import FaultPlan
from repro.fuzz.diff import run_fault_differential
from repro.fuzz.executors import (fault_fuzz_options, run_taskgrind,
                                  run_taskgrind_salvaged)
from repro.fuzz.gen import generate


class TestFaultDifferential:
    def test_builtin_matrix_is_clean_on_seed_batch(self):
        """The standing promise the chaos-smoke CI job enforces."""
        for seed in (1, 2, 3):
            result = run_fault_differential(generate(seed), schedules=1)
            assert result.ok, (f"seed {seed}: "
                               f"{[str(d) for d in result.divergences]}")

    def test_truncation_reports_are_a_subset(self):
        program = generate(2)
        options = fault_fuzz_options()
        full = run_taskgrind(program, schedule_seed=2000, options=options)
        assert not full.crashed
        outcome, info = run_taskgrind_salvaged(
            program, schedule_seed=2000,
            plan=FaultPlan.single("trace-truncate", 2), options=options)
        assert not outcome.crashed
        assert info["fired"].get("trace-truncate@2", 0) >= 1
        assert outcome.slots <= full.slots

    def test_fault_runs_are_counted(self):
        from repro.obs.metrics import get_registry
        reg = get_registry()
        before = reg.counter("fuzz.fault_runs").value
        run_fault_differential(
            generate(4), schedules=1,
            plans=[FaultPlan.single("worker-exc", 0, times=1)])
        assert reg.counter("fuzz.fault_runs").value > before
