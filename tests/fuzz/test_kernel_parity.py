"""Kernel parity over the fuzz corpus and salvaged traces.

``analysis_kernel=numpy`` must be report-for-report indistinguishable from
the pure-Python oracle on exactly the inputs the fuzz harness pins down:
every checked-in reproducer (including intentionally-broken-suppression
configs), truncated/salvaged traces, and arbitrary candidate-pair orderings
(the parallel pass chunks pairs in whatever order the scheduler lands on).
"""

import glob
import os
import random

import pytest

pytest.importorskip("numpy")

from repro.core.npkernel import KernelContext
from repro.core.tool import TaskgrindOptions, TaskgrindTool
from repro.core.trace import analyze_trace_with_stats, save_trace
from repro.fuzz.diff import run_differential
from repro.fuzz.executors import fuzz_options, run_taskgrind
from repro.fuzz.shrink import load_reproducer
from repro.machine.machine import Machine
from repro.openmp.api import make_env

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
ENTRIES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def outcome_key(outcome):
    return (outcome.crashed, outcome.slots, outcome.noise,
            outcome.report_count)


@pytest.mark.parametrize("path", ENTRIES,
                         ids=[os.path.basename(p) for p in ENTRIES])
def test_corpus_outcomes_identical_across_kernels(path):
    """Every reproducer — clean or pinned-divergent — behaves identically
    under both kernels, schedule by schedule."""
    program, _expect, options, _note = load_reproducer(path)
    for seed in (0, 1, 2):
        runs = {}
        for kernel in ("python", "numpy"):
            opts = fuzz_options(**dict(options, analysis_kernel=kernel))
            runs[kernel] = run_taskgrind(program, schedule_seed=seed,
                                         options=opts)
        assert outcome_key(runs["python"]) == outcome_key(runs["numpy"]), \
            f"{os.path.basename(path)} seed={seed} kernel divergence"


@pytest.mark.parametrize("path", ENTRIES[:2],
                         ids=[os.path.basename(p) for p in ENTRIES[:2]])
def test_differential_harness_clean_with_numpy(path):
    """The full differential harness with the numpy kernel forced must
    reach the same verdicts as the pinned expectation."""
    program, expect, options, note = load_reproducer(path)
    opts = fuzz_options(**dict(options, analysis_kernel="numpy"))
    result = run_differential(program, schedules=4, taskgrind_options=opts)
    if not expect:
        assert result.ok, (f"{note}: numpy kernel introduced "
                           f"{[str(d) for d in result.divergences]}")
    else:
        assert set(expect) <= set(result.kinds())


# ---------------------------------------------------------------------------
# salvaged / partial traces
# ---------------------------------------------------------------------------


def racy_listing(env):
    ctx = env.ctx
    x = ctx.malloc(8, line=3, name="x")
    y = ctx.malloc(16, line=4, name="y")

    def single_body():
        for n in range(3):
            env.task(lambda tv: (x.write(0), y.write(0), y.write(1)),
                     name=f"t{n}")

    env.parallel_single(single_body)


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    machine = Machine(seed=0)
    tool = TaskgrindTool(TaskgrindOptions())
    machine.add_tool(tool)
    env = make_env(machine, nthreads=4)
    env.rt.ompt.register(tool.make_ompt_shim())

    def main():
        with env.ctx.function("main", line=1):
            racy_listing(env)
    machine.run(main)
    tool.finalize()
    path = tmp_path_factory.mktemp("parity") / "run.trace.json"
    save_trace(tool, machine, str(path))
    return str(path)


def report_keys(reports):
    return sorted((r.key(), tuple(r.ranges.pairs())) for r in reports)


class TestSalvagedTraceParity:
    def test_intact_trace(self, trace_path):
        a, _ = analyze_trace_with_stats(trace_path, kernel="python")
        b, _ = analyze_trace_with_stats(trace_path, kernel="numpy")
        assert report_keys(a) == report_keys(b)
        assert report_keys(a)          # the fixture really races

    def test_truncated_trace(self, trace_path, tmp_path):
        """Every salvage prefix yields the same reports from both kernels."""
        data = open(trace_path, "rb").read()
        cut_points = range(0, len(data), max(1, len(data) // 12))
        for cut in cut_points:
            trunc = tmp_path / "cut.json"
            trunc.write_bytes(data[:cut])
            a, _ = analyze_trace_with_stats(str(trunc), kernel="python")
            b, _ = analyze_trace_with_stats(str(trunc), kernel="numpy")
            assert report_keys(a) == report_keys(b), f"cut={cut}"

    def test_supervised_partial_parity(self, trace_path):
        a, sa = analyze_trace_with_stats(trace_path, mode="parallel",
                                         workers=2, kernel="python")
        b, sb = analyze_trace_with_stats(trace_path, mode="parallel",
                                         workers=2, kernel="numpy")
        assert report_keys(a) == report_keys(b)
        assert sa["coverage"]["complete"] and sb["coverage"]["complete"]


class TestShuffleStability:
    def test_check_pairs_is_order_independent(self, trace_path):
        """The batched kernel's output must not depend on the order pairs
        arrive in — the parallel pass chunks them arbitrarily."""
        from repro.core.analysis import _candidate_pairs
        from repro.core.trace import load_trace

        graph, _view, _supp = load_trace(trace_path)
        graph.prepare_queries()
        segs = [s for s in graph.segments if s.has_accesses]
        pairs = sorted(_candidate_pairs(segs))
        ctx = KernelContext(graph, segs)
        base, base_ordered = ctx.check_pairs(pairs)
        base_key = sorted((i, j, tuple(r.pairs())) for i, j, r in base)
        rng = random.Random(7)
        for _ in range(4):
            shuffled = pairs[:]
            rng.shuffle(shuffled)
            got, got_ordered = ctx.check_pairs(shuffled)
            assert sorted((i, j, tuple(r.pairs()))
                          for i, j, r in got) == base_key
            assert got_ordered == base_ordered
