"""Tests for the simulated OpenMP runtime (fork/join, tasks, sync)."""

import pytest

from repro.machine.machine import Machine
from repro.openmp.api import make_env
from repro.openmp.ompt import OmptObserver


def run_omp(body, nthreads=4, seed=0, observer=None):
    m = Machine(seed=seed)
    env = make_env(m, nthreads=nthreads)
    if observer is not None:
        env.rt.ompt.register(observer)
    def main():
        with env.ctx.function("main", line=1):
            body(env)
    m.run(main)
    return m, env


class Trace(OmptObserver):
    def __init__(self):
        self.events = []

    def on_parallel_begin(self, region, task):
        self.events.append(("parallel_begin", region.id))

    def on_parallel_end(self, region, task):
        self.events.append(("parallel_end", region.id))

    def on_implicit_task_begin(self, region, task):
        self.events.append(("implicit_begin", region.id))

    def on_implicit_task_end(self, region, task):
        self.events.append(("implicit_end", region.id))

    def on_task_create(self, task, parent):
        self.events.append(("create", task.tid))

    def on_task_schedule_begin(self, task, tid):
        self.events.append(("begin", task.tid, tid))

    def on_task_schedule_end(self, task, tid, completed):
        self.events.append(("end", task.tid, completed))

    def on_task_dependence_pair(self, pred, succ, dep):
        self.events.append(("dep", pred.tid, succ.tid))

    def on_sync_region_begin(self, kind, task, tid):
        self.events.append(("sync_begin", kind))

    def on_sync_region_end(self, kind, task, tid):
        self.events.append(("sync_end", kind))


class TestParallel:
    def test_team_runs_every_member(self):
        seen = []

        def body(env):
            env.parallel(lambda tid: seen.append(tid), num_threads=4)

        run_omp(body)
        assert sorted(seen) == [0, 1, 2, 3]

    def test_ompt_parallel_events(self):
        tr = Trace()

        def body(env):
            env.parallel(lambda tid: None, num_threads=2)

        run_omp(body, observer=tr)
        kinds = [e[0] for e in tr.events]
        assert kinds.count("parallel_begin") == 1
        assert kinds.count("implicit_begin") == 2
        assert kinds.count("implicit_end") == 2
        assert kinds[-1] == "parallel_end"

    def test_thread_num_and_num_threads(self):
        out = {}

        def body(env):
            def region(tid):
                out[env.thread_num()] = env.num_threads()
            env.parallel(region, num_threads=3)

        run_omp(body)
        assert out == {0: 3, 1: 3, 2: 3}

    def test_sequential_regions(self):
        trace = []

        def body(env):
            env.parallel(lambda tid: trace.append(("r1", tid)), num_threads=2)
            env.parallel(lambda tid: trace.append(("r2", tid)), num_threads=2)

        run_omp(body)
        # every r1 entry strictly before every r2 entry (fork/join semantics)
        last_r1 = max(i for i, e in enumerate(trace) if e[0] == "r1")
        first_r2 = min(i for i, e in enumerate(trace) if e[0] == "r2")
        assert last_r1 < first_r2

    def test_serial_region(self):
        seen = []

        def body(env):
            env.parallel(lambda tid: seen.append(tid), num_threads=1)

        run_omp(body, nthreads=1)
        assert seen == [0]


class TestSingleMaster:
    def test_single_executes_once(self):
        count = []

        def body(env):
            env.parallel(lambda tid: env.single(lambda: count.append(tid)),
                         num_threads=4)

        run_omp(body)
        assert len(count) == 1

    def test_two_singles_each_once(self):
        counts = {"a": 0, "b": 0}

        def body(env):
            def region(tid):
                env.single(lambda: counts.__setitem__("a", counts["a"] + 1))
                env.single(lambda: counts.__setitem__("b", counts["b"] + 1))
            env.parallel(region, num_threads=4)

        run_omp(body)
        assert counts == {"a": 1, "b": 1}

    def test_master_runs_on_member_zero_only(self):
        ran = []

        def body(env):
            def region(tid):
                env.master(lambda: ran.append(env.thread_num()))
            env.parallel(region, num_threads=4)

        run_omp(body)
        assert ran == [0]


class TestTasks:
    def test_tasks_execute_before_region_end(self):
        done = []

        def body(env):
            env.parallel_single(lambda: [
                env.task(lambda tv: done.append(i)) for i in range(8)
            ], num_threads=4)

        run_omp(body)
        assert sorted(done) == list(range(8))

    def test_tasks_distributed_across_threads(self):
        execs = []

        def body(env):
            def make():
                for i in range(16):
                    env.task(lambda tv: execs.append(
                        env.ctx.machine.scheduler.current_id()))
            env.parallel_single(make, num_threads=4)

        run_omp(body)
        assert len(execs) == 16
        assert len(set(execs)) > 1     # work stealing spread the tasks

    def test_serial_team_tasks_are_included(self):
        """LLVM single-thread behaviour: tasks run inline at creation."""
        order = []

        def body(env):
            def make():
                order.append("before")
                t = env.task(lambda tv: order.append("task"))
                order.append("after")
                assert t.is_included
            env.parallel_single(make, num_threads=1)

        run_omp(body, nthreads=1)
        assert order == ["before", "task", "after"]

    def test_if_false_is_undeferred(self):
        order = []

        def body(env):
            def make():
                t = env.task(lambda tv: order.append("task"), if_=False)
                order.append("after")
                assert t.is_undeferred
            env.parallel_single(make, num_threads=4)

        run_omp(body)
        assert order == ["task", "after"]

    def test_final_makes_children_included(self):
        order = []

        def body(env):
            def outer(tv):
                env.task(lambda tv2: order.append("inner"))
                order.append("outer_after_create")

            env.parallel_single(
                lambda: env.task(outer, final=True), num_threads=4)

        run_omp(body)
        assert order.index("inner") < order.index("outer_after_create")

    def test_firstprivate_capture(self):
        captured = []

        def body(env):
            ctx = env.ctx
            i = ctx.stack_var("i", 8, elem=8)

            def make():
                for val in range(3):
                    i.write(0, val)
                    env.task(lambda tv: captured.append(tv.private_value("i")),
                             firstprivate={"i": i})
            env.parallel_single(make, num_threads=4)

        run_omp(body)
        assert sorted(captured) == [0, 1, 2]

    def test_detach_defers_completion(self):
        events = {}
        order = []

        def body(env):
            def make():
                def t1(tv):
                    events["ev"] = tv.detach_event
                    order.append("t1_body_done")
                env.task(t1, detachable=True)
                env.task(lambda tv: (order.append("t2"),
                                     events["ev"].fulfill()))
                env.taskwait()
                order.append("after_taskwait")
            env.parallel_single(make, num_threads=2)

        run_omp(body)
        assert order.index("after_taskwait") > order.index("t2")
        assert order.index("after_taskwait") > order.index("t1_body_done")


class TestDependencies:
    def _two_dep_tasks(self, env, order, kind1, kind2):
        ctx = env.ctx
        x = ctx.malloc(8)

        def make():
            env.task(lambda tv: order.append("t1"), depend={kind1: [x]})
            env.task(lambda tv: order.append("t2"), depend={kind2: [x]})
        env.parallel_single(make, num_threads=4)

    @pytest.mark.parametrize("k1,k2", [("out", "out"), ("out", "in"),
                                       ("in", "out"), ("inout", "inout"),
                                       ("out", "inoutset"),
                                       ("inoutset", "out")])
    def test_ordering_pairs(self, k1, k2):
        order = []

        def body(env):
            self._two_dep_tasks(env, order, k1, k2)

        run_omp(body, seed=3)
        assert order == ["t1", "t2"]

    def test_in_in_unordered_but_both_run(self):
        order = []

        def body(env):
            self._two_dep_tasks(env, order, "in", "in")

        run_omp(body)
        assert sorted(order) == ["t1", "t2"]

    def test_dependence_chain(self):
        order = []

        def body(env):
            ctx = env.ctx
            x = ctx.malloc(8)

            def make():
                for i in range(5):
                    env.task(lambda tv, i=i: order.append(i),
                             depend={"inout": [x]})
            env.parallel_single(make, num_threads=4)

        run_omp(body, seed=11)
        assert order == [0, 1, 2, 3, 4]

    def test_readers_between_writers(self):
        order = []

        def body(env):
            ctx = env.ctx
            x = ctx.malloc(8)

            def make():
                env.task(lambda tv: order.append("w1"), depend={"out": [x]})
                env.task(lambda tv: order.append("r1"), depend={"in": [x]})
                env.task(lambda tv: order.append("r2"), depend={"in": [x]})
                env.task(lambda tv: order.append("w2"), depend={"out": [x]})
            env.parallel_single(make, num_threads=4)

        run_omp(body, seed=5)
        assert order[0] == "w1" and order[-1] == "w2"

    def test_dependence_pairs_announced(self):
        tr = Trace()

        def body(env):
            ctx = env.ctx
            x = ctx.malloc(8)

            def make():
                env.task(lambda tv: None, depend={"out": [x]})
                env.task(lambda tv: None, depend={"in": [x]})
            env.parallel_single(make, num_threads=2)

        run_omp(body, observer=tr)
        deps = [e for e in tr.events if e[0] == "dep"]
        assert len(deps) == 1

    def test_non_sibling_deps_do_not_order(self):
        """DRB173 mechanism: depend clauses only bind siblings."""
        tr = Trace()

        def body(env):
            ctx = env.ctx
            x = ctx.malloc(8)

            def outer1(tv):
                env.task(lambda tv2: None, depend={"out": [x]})
                env.taskwait()

            def outer2(tv):
                env.task(lambda tv2: None, depend={"out": [x]})
                env.taskwait()

            def make():
                env.task(outer1)
                env.task(outer2)
            env.parallel_single(make, num_threads=4)

        run_omp(body, observer=tr)
        assert not [e for e in tr.events if e[0] == "dep"]

    def test_mutexinoutset_mutual_exclusion(self):
        active = {"n": 0, "max": 0}

        def body(env):
            ctx = env.ctx
            x = ctx.malloc(8)

            def crit(tv):
                active["n"] += 1
                active["max"] = max(active["max"], active["n"])
                env.ctx.machine.scheduler.yield_point()
                active["n"] -= 1

            def make():
                for _ in range(6):
                    env.task(crit, depend={"mutexinoutset": [x]})
            env.parallel_single(make, num_threads=4)

        run_omp(body, seed=2)
        assert active["max"] == 1    # never two members at once


class TestSync:
    def test_taskwait_waits_for_children(self):
        order = []

        def body(env):
            def make():
                for i in range(4):
                    env.task(lambda tv, i=i: order.append(i))
                env.taskwait()
                order.append("done")
            env.parallel_single(make, num_threads=4)

        run_omp(body)
        assert order[-1] == "done"
        assert sorted(order[:-1]) == [0, 1, 2, 3]

    def test_taskwait_does_not_wait_grandchildren(self):
        order = []

        def body(env):
            def child(tv):
                env.task(lambda tv2: order.append("grandchild"))
                order.append("child_done")

            def make():
                env.task(child)
                env.taskwait()
                order.append("after_wait")
            env.parallel_single(make, num_threads=4)

        run_omp(body)
        assert order.index("after_wait") > order.index("child_done")

    def test_taskgroup_waits_for_descendants(self):
        order = []

        def body(env):
            def child(tv):
                env.task(lambda tv2: order.append("grandchild"))
                order.append("child_done")

            def make():
                env.taskgroup(lambda: env.task(child))
                order.append("after_group")
            env.parallel_single(make, num_threads=4)

        run_omp(body)
        assert order.index("after_group") > order.index("grandchild")

    def test_explicit_barrier(self):
        trace = []

        def body(env):
            def region(tid):
                trace.append(("pre", tid))
                env.barrier()
                trace.append(("post", tid))
            env.parallel(region, num_threads=3)

        run_omp(body)
        last_pre = max(i for i, e in enumerate(trace) if e[0] == "pre")
        first_post = min(i for i, e in enumerate(trace) if e[0] == "post")
        assert last_pre < first_post

    def test_critical_mutual_exclusion(self):
        state = {"in": 0, "max": 0, "count": 0}

        def body(env):
            def region(tid):
                with env.critical("c"):
                    state["in"] += 1
                    state["max"] = max(state["max"], state["in"])
                    env.ctx.machine.scheduler.yield_point()
                    state["in"] -= 1
                    state["count"] += 1
            env.parallel(region, num_threads=4)

        run_omp(body)
        assert state["max"] == 1 and state["count"] == 4

    def test_lock(self):
        order = []

        def body(env):
            lk = env.lock("L")

            def region(tid):
                with lk:
                    order.append(tid)
            env.parallel(region, num_threads=3)

        run_omp(body)
        assert sorted(order) == [0, 1, 2]


class TestLoops:
    def test_for_static_partitions(self):
        seen = []

        def body(env):
            def region(tid):
                for i in env.for_static(0, 10):
                    seen.append(i)
                env.barrier()
            env.parallel(region, num_threads=3)

        run_omp(body)
        assert sorted(seen) == list(range(10))

    def test_taskloop_covers_space(self):
        seen = []

        def body(env):
            def chunk(tv, lo, hi):
                seen.extend(range(lo, hi))
            env.parallel_single(
                lambda: env.taskloop(chunk, 0, 20, num_tasks=4),
                num_threads=4)

        run_omp(body)
        assert sorted(seen) == list(range(20))

    def test_taskloop_group_waits(self):
        seen = []

        def body(env):
            def make():
                env.taskloop(lambda tv, lo, hi: seen.extend(range(lo, hi)),
                             0, 8, num_tasks=4)
                seen.append("after")
            env.parallel_single(make, num_threads=4)

        run_omp(body)
        assert seen[-1] == "after" and sorted(seen[:-1]) == list(range(8))

    def test_taskloop_collapse2(self):
        seen = []

        def body(env):
            env.parallel_single(
                lambda: env.taskloop_collapse2(
                    lambda tv, i, j: seen.append((i, j)), 0, 3, 0, 4,
                    num_tasks=3),
                num_threads=2)

        run_omp(body)
        assert sorted(seen) == [(i, j) for i in range(3) for j in range(4)]


class TestThreadprivate:
    def test_distinct_per_thread(self):
        addrs = {}

        def body(env):
            def region(tid):
                v = env.threadprivate("counter")
                addrs[env.thread_num()] = v.addr
                v.write(0)
            env.parallel(region, num_threads=3)

        run_omp(body)
        assert len(set(addrs.values())) == 3

    def test_same_thread_same_address(self):
        addrs = []

        def body(env):
            v1 = env.threadprivate("c2")
            v2 = env.threadprivate("c2")
            addrs.append((v1.addr, v2.addr))

        run_omp(body)
        a, b = addrs[0]
        assert a == b


class TestDeterminism:
    def test_same_seed_same_execution_order(self):
        def run_once(seed):
            execs = []

            def body(env):
                def make():
                    for i in range(12):
                        env.task(lambda tv, i=i: execs.append(i))
                env.parallel_single(make, num_threads=4)

            run_omp(body, seed=seed)
            return execs

        assert run_once(1) == run_once(1)
        assert run_once(2) == run_once(2)

    def test_different_seeds_differ_somewhere(self):
        """Seeded stealing varies *which thread* executes each task."""
        def run_once(seed):
            execs = []

            def body(env):
                def make():
                    for i in range(20):
                        env.task(lambda tv, i=i: execs.append(
                            (i, env.ctx.machine.scheduler.current_id())))
                env.parallel_single(make, num_threads=4)

            run_omp(body, seed=seed)
            return tuple(execs)

        results = {run_once(s) for s in range(6)}
        assert len(results) > 1
