"""Coverage tests for the remaining OpenMP constructs and corner cases."""

import pytest

from repro.machine.machine import Machine
from repro.openmp.api import make_env
from repro.openmp.loops import Collapse2Map, chunk_iteration_space, collapse2
from repro.openmp.ompt import TaskFlags


def run_omp(body, nthreads=4, seed=0):
    machine = Machine(seed=seed)
    env = make_env(machine, nthreads=nthreads)

    def main():
        with env.ctx.function("main", line=1):
            body(env)
    machine.run(main)
    return machine, env


class TestChunking:
    def test_grainsize(self):
        chunks = chunk_iteration_space(0, 100, grainsize=30)
        assert chunks == [(0, 30), (30, 60), (60, 90), (90, 100)]

    def test_num_tasks(self):
        chunks = chunk_iteration_space(0, 100, num_tasks=3)
        assert len(chunks) == 3
        assert chunks[0][0] == 0 and chunks[-1][1] == 100

    def test_num_tasks_more_than_iterations(self):
        chunks = chunk_iteration_space(0, 3, num_tasks=10)
        assert len(chunks) == 3
        assert all(hi - lo == 1 for lo, hi in chunks)

    def test_default_caps_at_64(self):
        assert len(chunk_iteration_space(0, 1000)) <= 64

    def test_empty_space(self):
        assert chunk_iteration_space(5, 5) == []
        assert chunk_iteration_space(5, 3) == []

    def test_mutually_exclusive_args(self):
        with pytest.raises(ValueError):
            chunk_iteration_space(0, 10, num_tasks=2, grainsize=3)

    def test_collapse2_roundtrip(self):
        lo, hi, unmap = collapse2(1, 4, 10, 13)
        assert (lo, hi) == (0, 9)
        pairs = [unmap(k) for k in range(lo, hi)]
        assert pairs == [(i, j) for i in range(1, 4) for j in range(10, 13)]

    def test_collapse2map_direct(self):
        m = Collapse2Map(0, 0, 5)
        assert m(0) == (0, 0)
        assert m(7) == (1, 2)


class TestDetachWithDependences:
    def test_successor_waits_for_fulfill(self):
        order = []

        def body(env):
            ctx = env.ctx
            x = ctx.malloc(8)
            box = {}

            def producer(tv):
                box["ev"] = tv.detach_event
                order.append("producer-body")

            def make():
                env.task(producer, detachable=True, depend={"out": [x]})
                env.task(lambda tv: (order.append("poke"),
                                     box["ev"].fulfill()))
                env.task(lambda tv: order.append("successor"),
                         depend={"in": [x]})
                env.taskwait()
            env.parallel_single(make)

        run_omp(body)
        assert order.index("successor") > order.index("poke")
        assert order.index("successor") > order.index("producer-body")

    def test_fulfill_before_body_end(self):
        order = []

        def body(env):
            def producer(tv):
                tv.detach_event.fulfill()        # fulfilled while running
                order.append("after-fulfill")

            def make():
                env.task(producer, detachable=True)
                env.taskwait()
                order.append("after-wait")
            env.parallel_single(make)

        run_omp(body)
        assert order == ["after-fulfill", "after-wait"]


class TestFlags:
    def _flags_of(self, env_kwargs, task_kwargs, nthreads=4):
        captured = {}

        def body(env):
            def make():
                t = env.task(lambda tv: None, **task_kwargs)
                captured["flags"] = t.flags
            env.parallel_single(make)

        run_omp(body, nthreads=nthreads)
        return captured["flags"]

    def test_untied_flag(self):
        assert self._flags_of({}, {"untied": True}) & TaskFlags.UNTIED

    def test_mergeable_not_merged_when_deferred(self):
        flags = self._flags_of({}, {"mergeable": True})
        assert flags & TaskFlags.MERGEABLE
        assert not flags & TaskFlags.MERGED

    def test_mergeable_merged_when_undeferred(self):
        flags = self._flags_of({}, {"mergeable": True, "if_": False})
        assert flags & TaskFlags.MERGED

    def test_included_on_serial_team(self):
        flags = self._flags_of({}, {}, nthreads=1)
        assert flags & TaskFlags.INCLUDED

    def test_final_sets_both(self):
        flags = self._flags_of({}, {"final": True})
        assert flags & TaskFlags.FINAL and flags & TaskFlags.INCLUDED


class TestWorksharing:
    def test_for_static_disjoint_partitions(self):
        parts = {}

        def body(env):
            def region(tid):
                parts[env.thread_num()] = list(env.for_static(0, 17))
                env.barrier()
            env.parallel(region, num_threads=4)

        run_omp(body)
        flat = sorted(i for p in parts.values() for i in p)
        assert flat == list(range(17))

    def test_single_nowait_skips_barrier(self):
        """With nowait, a non-winner can pass before the winner finishes."""
        trace = []

        def body(env):
            def region(tid):
                won = env.single(lambda: trace.append("single-body"),
                                 nowait=True)
                trace.append(("past", env.thread_num(), won))
            env.parallel(region, num_threads=3)

        run_omp(body)
        assert trace.count("single-body") == 1
        assert sum(1 for e in trace if e != "single-body") == 3

    def test_master_no_barrier(self):
        ran = []

        def body(env):
            def region(tid):
                env.master(lambda: ran.append("m"))
            env.parallel(region, num_threads=4)

        run_omp(body)
        assert ran == ["m"]


class TestTaskgroupNesting:
    def test_nested_groups_wait_correct_sets(self):
        order = []

        def body(env):
            def make():
                def outer_group():
                    env.task(lambda tv: order.append("outer-task"))

                    def inner_group():
                        env.task(lambda tv: order.append("inner-task"))
                    env.taskgroup(inner_group)
                    order.append("after-inner")
                env.taskgroup(outer_group)
                order.append("after-outer")
            env.parallel_single(make)

        run_omp(body)
        assert order.index("inner-task") < order.index("after-inner")
        assert order.index("outer-task") < order.index("after-outer")

    def test_group_member_created_by_member(self):
        order = []

        def body(env):
            def child(tv):
                env.task(lambda tv2: order.append("grand"))
                order.append("child")

            def make():
                env.taskgroup(lambda: env.task(child))
                order.append("after")
            env.parallel_single(make)

        run_omp(body)
        assert order.index("grand") < order.index("after")


class TestPriorityAndMisc:
    def test_priority_accepted(self):
        def body(env):
            def make():
                t = env.task(lambda tv: None, priority=5)
                assert t.priority == 5
            env.parallel_single(make)
        run_omp(body)

    def test_threadprivate_value_persists_across_regions(self):
        values = []

        def body(env):
            def r1(tid):
                v = env.threadprivate("persist")
                if env.thread_num() == 0:
                    v.write(0, 77)
                env.barrier()

            def r2(tid):
                if env.thread_num() == 0:
                    values.append(env.threadprivate("persist").read(0))
                env.barrier()
            env.parallel(r1, num_threads=2)
            env.parallel(r2, num_threads=2)

        run_omp(body)
        # NOTE: worker thread identity differs across regions in the
        # simulated runtime (fresh sim threads per region), but member 0 is
        # always the encountering thread, so its TLS persists.
        assert values == [77]
