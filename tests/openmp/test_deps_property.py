"""Property tests: DependencyTracker vs a brute-force ordering oracle."""

from typing import List

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.openmp.deps import DependencyTracker
from repro.openmp.ompt import DepKind, Dependence


class FakeTask:
    _next = 0

    def __init__(self):
        self.tid = FakeTask._next
        FakeTask._next += 1
        self.mutexinoutset_addrs = []

    def __repr__(self):
        return f"T{self.tid}"


def closure_from_tracker(dep_lists: List[List[Dependence]]) -> nx.DiGraph:
    """Feed the tracker and return the transitive closure it implies."""
    tracker = DependencyTracker()
    tasks = [FakeTask() for _ in dep_lists]
    g = nx.DiGraph()
    g.add_nodes_from(range(len(tasks)))
    by_task = {t.tid: i for i, t in enumerate(tasks)}
    for i, (task, deps) in enumerate(zip(tasks, dep_lists)):
        for pred, _dep in tracker.register(task, deps):
            g.add_edge(by_task[pred.tid], i)
    return nx.transitive_closure_dag(g)


def oracle_must_order(dep_lists: List[List[Dependence]], i: int,
                      j: int) -> bool:
    """Spec-level: must task j run after task i?  (i < j, same address.)

    j must follow i iff they reference a common address and at least one of
    the two references at that address is a 'writer-ish' kind, EXCEPT when
    both belong to the same inoutset/mutexinoutset set generation (mutually
    unordered) — which here means: same kind in {inoutset, mutexinoutset}
    with no intervening non-set reference at that address.
    """
    addrs_i = {d.addr: d.kind for d in dep_lists[i]}
    for dj in dep_lists[j]:
        if dj.addr not in addrs_i:
            continue
        ki = addrs_i[dj.addr]
        kj = dj.kind
        readers = {DepKind.IN}
        if ki in readers and kj in readers:
            continue                      # reader-reader: parallel
        sets = {DepKind.INOUTSET, DepKind.MUTEXINOUTSET}
        if ki in sets and kj == ki:
            # same-set members are unordered iff no non-set reference to
            # this address occurred between them
            between = False
            for k in range(i + 1, j):
                for dk in dep_lists[k]:
                    if dk.addr == dj.addr and dk.kind != ki:
                        between = True
            if not between:
                continue
        return True
    return False


dep_strategy = st.builds(
    Dependence,
    kind=st.sampled_from([DepKind.IN, DepKind.OUT, DepKind.INOUT,
                          DepKind.INOUTSET, DepKind.MUTEXINOUTSET]),
    addr=st.integers(0, 2),
    size=st.just(4),
)

dep_lists_strategy = st.lists(
    st.lists(dep_strategy, max_size=2, unique_by=lambda d: d.addr),
    min_size=2, max_size=6)


class TestTrackerVsOracle:
    @given(dep_lists_strategy)
    @settings(max_examples=200, deadline=None)
    def test_required_orderings_present(self, dep_lists):
        """Every ordering the spec requires must be in the tracker's DAG."""
        closure = closure_from_tracker(dep_lists)
        for i in range(len(dep_lists)):
            for j in range(i + 1, len(dep_lists)):
                if oracle_must_order(dep_lists, i, j):
                    assert closure.has_edge(i, j), (i, j, dep_lists)

    @given(dep_lists_strategy)
    @settings(max_examples=200, deadline=None)
    def test_reader_pairs_stay_parallel(self, dep_lists):
        """Two consecutive pure readers at an address are never ordered
        *by that address* (they may be ordered through other addresses)."""
        closure = closure_from_tracker(dep_lists)
        for i in range(len(dep_lists)):
            for j in range(i + 1, len(dep_lists)):
                only_reads = all(d.kind == DepKind.IN
                                 for d in dep_lists[i] + dep_lists[j])
                if only_reads and not oracle_must_order(dep_lists, i, j):
                    # readers may still be transitively ordered through a
                    # writer between them; we only assert no DIRECT edge
                    # when nothing requires it and nothing sits between
                    writer_between = any(
                        d.kind != DepKind.IN
                        for k in range(i + 1, j)
                        for d in dep_lists[k])
                    if not writer_between:
                        assert not closure.has_edge(i, j), (i, j, dep_lists)

    @given(dep_lists_strategy)
    @settings(max_examples=100, deadline=None)
    def test_graph_is_acyclic_and_forward(self, dep_lists):
        tracker = DependencyTracker()
        tasks = [FakeTask() for _ in dep_lists]
        for task, deps in zip(tasks, dep_lists):
            for pred, _dep in tracker.register(task, deps):
                assert pred.tid < task.tid      # edges point backward in time
